(* 16-bit wire-word codec for packed CONGEST frames.

   A frame is a sequence of logical words (63-bit OCaml ints), each
   encoded as a little-endian zigzag varint in 15-bit groups: every
   16-bit wire word carries 15 payload bits, with the high bit set
   when another group follows.  Small values — node ids, tags, hop
   counts — fit a single wire word below 2^14; a full-width int needs
   at most [max_wire_words] = 5.  The encoding is canonical (no
   redundant trailing groups), so the wire length is a deterministic
   function of the value and the engine and the reference simulator
   agree bit-for-bit on [measured_bits]. *)

let word_bits = 16
let max_wire_words = 5
let guard_words = 1

exception Width_exceeded of { budget : int; words : int }
exception Truncated_frame of { wire : int }
exception Corrupt_frame of { wire : int }

let () =
  Printexc.register_printer (function
    | Width_exceeded { budget; words } ->
      Some
        (Printf.sprintf "Codec.Width_exceeded(budget %d, words %d)" budget
           words)
    | Truncated_frame { wire } ->
      Some (Printf.sprintf "Codec.Truncated_frame(wire %d)" wire)
    | Corrupt_frame { wire } ->
      Some (Printf.sprintf "Codec.Corrupt_frame(wire %d)" wire)
    | _ -> None)

(* CRC-16/CCITT (poly 0x1021, init 0xFFFF), table-driven over bytes.  The
   polynomial has an even number of terms, hence the factor (x + 1): every
   odd-weight error is detected, and every burst confined to 16 bits —
   in particular any garbling of a single wire word — is detected too.
   The guard word is this CRC over the frame's data wire words, stored as
   one extra raw (non-varint) wire word after them. *)
let crc_init = 0xFFFF

let crc_table =
  let t = Array.make 256 0 in
  for b = 0 to 255 do
    let c = ref (b lsl 8) in
    for _ = 0 to 7 do
      c :=
        if !c land 0x8000 <> 0 then ((!c lsl 1) lxor 0x1021) land 0xFFFF
        else (!c lsl 1) land 0xFFFF
    done;
    t.(b) <- !c
  done;
  t

let crc_byte crc b =
  ((crc lsl 8) land 0xFF00) lxor crc_table.(((crc lsr 8) lxor b) land 0xFF)

(* one 16-bit wire word, fed in buffer (little-endian) byte order *)
let crc_word crc g = crc_byte (crc_byte crc (g land 0xFF)) (g lsr 8)

(* CRC of the [wire] wire words packed at [base]. *)
let crc_region buf ~base ~wire =
  let crc = ref crc_init in
  for i = 0 to wire - 1 do
    crc := crc_word !crc (Bytes.get_uint16_le buf (base + (2 * i)))
  done;
  !crc

let verify buf ~base ~wire =
  wire >= guard_words
  && base >= 0
  && base + (2 * wire) <= Bytes.length buf
  && Bytes.get_uint16_le buf (base + (2 * (wire - 1)))
     = crc_region buf ~base ~wire:(wire - 1)

(* Structural sanity of packed data wire words: every continuation run
   terminates within [max_wire_words] groups, the frame does not end
   mid-value, and it parses into exactly [words] logical words.  The
   corruption pass runs this on frames that survive the CRC check (a
   2^-16 collision): a frame failing it would make the decoder raise
   inside algorithm code, so it is dropped as detected corruption
   instead. *)
let well_formed buf ~base ~wire ~words =
  base >= 0 && wire >= 0
  && base + (2 * wire) <= Bytes.length buf
  &&
  let w = ref 0 and run = ref 0 and ok = ref true in
  for i = 0 to wire - 1 do
    let g = Bytes.get_uint16_le buf (base + (2 * i)) in
    if g land 0x8000 = 0 then begin
      incr w;
      run := 0
    end
    else begin
      incr run;
      if !run >= max_wire_words then ok := false
    end
  done;
  !ok && !run = 0 && !w = words

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let wire_length v =
  let z = zigzag v in
  if z = 0 then 1
  else begin
    let n = ref 0 and z = ref z in
    while !z <> 0 do
      incr n;
      z := !z lsr 15
    done;
    !n
  end

let measure p = Array.fold_left (fun acc v -> acc + wire_length v) 0 p
let measured_bits p = word_bits * measure p

(* Raw (unchecked) frame encode/decode over a caller-sized region.
   [encode] returns the wire-word count; the caller guarantees
   capacity for [max_wire_words] wire words per logical word. *)

(* The group loops are top-level with every dependency passed as an
   argument: defined inside [put]/[get] they would close over the
   buffer and cost a closure allocation per word on the engine's
   zero-allocation emit path. *)
let rec put_groups buf base z wire =
  let g = z land 0x7FFF and rest = z lsr 15 in
  if rest = 0 then begin
    Bytes.set_uint16_le buf (base + (2 * wire)) g;
    wire + 1
  end
  else begin
    Bytes.set_uint16_le buf (base + (2 * wire)) (g lor 0x8000);
    put_groups buf base rest (wire + 1)
  end

(* [shift] is bounded by the canonical group count: a 63-bit zigzag value
   needs at most [max_wire_words] groups, so a continuation bit on the
   group at shift [15 * (max_wire_words - 1)] cannot come from any encoder
   of ours — only from corrupt bytes.  Without the check the shift would
   run past the int width, where [lsl] is unspecified: a silently wrong
   decode instead of a typed error. *)
let rec decode_groups buf base wire pos z shift =
  if !pos >= wire then raise (Truncated_frame { wire });
  let g = Bytes.get_uint16_le buf (base + (2 * !pos)) in
  incr pos;
  let z = z lor ((g land 0x7FFF) lsl shift) in
  if g land 0x8000 = 0 then z
  else if shift >= 15 * (max_wire_words - 1) then raise (Corrupt_frame { wire })
  else decode_groups buf base wire pos z (shift + 15)

let encode buf ~base p =
  let wire = ref 0 in
  for i = 0 to Array.length p - 1 do
    wire := put_groups buf base (zigzag p.(i)) !wire
  done;
  !wire

(* Single-word frame encode, the broadcast fast path: the engine encodes
   the frame once into a scratch region and fans the bytes out to every
   out-port. *)
let encode1 buf ~base v = put_groups buf base (zigzag v) 0

(* Guarded flavors: the data words followed by one raw CRC wire word.
   The returned count includes the guard, so delivered-bit accounting
   charges for it like any other wire word. *)
let encode_guarded buf ~base p =
  let wire = encode buf ~base p in
  Bytes.set_uint16_le buf (base + (2 * wire)) (crc_region buf ~base ~wire);
  wire + guard_words

let encode1_guarded buf ~base v =
  let wire = put_groups buf base (zigzag v) 0 in
  Bytes.set_uint16_le buf (base + (2 * wire)) (crc_region buf ~base ~wire);
  wire + guard_words

let decode buf ~base ~wire ~words =
  if base < 0 || base + (2 * wire) > Bytes.length buf then
    raise (Truncated_frame { wire });
  let out = Array.make words 0 in
  let pos = ref 0 in
  for i = 0 to words - 1 do
    out.(i) <- unzigzag (decode_groups buf base wire pos 0 0)
  done;
  out

(* Writers.  A writer is a reusable cursor over either a fixed arena
   region ([attach_writer], the engine's zero-allocation emit path) or
   its own growable scratch buffer ([scratch_writer], used by the
   emit->list compat adapter and boxed inbox views).  A writer given
   to [attach_writer] must not be reused with [scratch_writer]: the
   scratch mode assumes it owns [buf]. *)

type writer = {
  mutable buf : Bytes.t;
  mutable base : int;
  mutable wire : int; (* wire words written so far *)
  mutable words : int; (* logical words written so far *)
  mutable budget : int;
  mutable grow : bool;
  mutable guard : bool; (* guard word pending: [seal] will append it *)
  mutable crc : int; (* running CRC over the data wire words *)
}

let writer () =
  { buf = Bytes.create 64; base = 0; wire = 0; words = 0; budget = 0;
    grow = true; guard = false; crc = crc_init }

let attach_writer ?(guard = false) w buf ~base ~budget =
  w.buf <- buf;
  w.base <- base;
  w.wire <- 0;
  w.words <- 0;
  w.budget <- budget;
  w.grow <- false;
  w.guard <- guard;
  w.crc <- crc_init

let scratch_writer ?(guard = false) w ~budget =
  w.base <- 0;
  w.wire <- 0;
  w.words <- 0;
  w.budget <- budget;
  w.grow <- true;
  w.guard <- guard;
  w.crc <- crc_init

let put w v =
  let words = w.words + 1 in
  if words > w.budget then raise (Width_exceeded { budget = w.budget; words });
  if w.grow then begin
    let need = w.base + (2 * (w.wire + max_wire_words + guard_words)) in
    if Bytes.length w.buf < need then begin
      let cap = ref (max 64 (Bytes.length w.buf)) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit w.buf 0 nb 0 (Bytes.length w.buf);
      w.buf <- nb
    end
  end;
  let prev = w.wire in
  w.wire <- put_groups w.buf w.base (zigzag v) prev;
  (* Incremental guard: fold the wire words this put just produced into
     the running CRC — a read-back of at most [max_wire_words] u16s, no
     allocation, so the zero-alloc emit path keeps its claim. *)
  if w.guard then begin
    let crc = ref w.crc in
    for i = prev to w.wire - 1 do
      crc := crc_word !crc (Bytes.get_uint16_le w.buf (w.base + (2 * i)))
    done;
    w.crc <- !crc
  end;
  w.words <- words

(* Publish the pending guard word (if the writer was attached with
   [~guard:true]) and return the frame's total wire length.  Idempotent:
   the guard is appended once; later calls just return the length. *)
let seal w =
  if w.guard then begin
    w.guard <- false;
    Bytes.set_uint16_le w.buf (w.base + (2 * w.wire)) w.crc;
    w.wire <- w.wire + guard_words
  end;
  w.wire

let words w = w.words
let wire w = w.wire
let writer_bytes w = w.buf

(* Readers: a reusable cursor decoding one frame in place. *)

type reader = {
  mutable rbuf : Bytes.t;
  mutable rbase : int;
  mutable rwire : int;
  mutable rwords : int;
  mutable rpos : int; (* wire words consumed *)
  mutable rread : int; (* logical words consumed *)
}

let reader () =
  { rbuf = Bytes.empty; rbase = 0; rwire = 0; rwords = 0; rpos = 0; rread = 0 }

let attach_reader r buf ~base ~wire ~words =
  if base < 0 || wire < 0 || base + (2 * wire) > Bytes.length buf then
    raise (Truncated_frame { wire });
  r.rbuf <- buf;
  r.rbase <- base;
  r.rwire <- wire;
  r.rwords <- words;
  r.rpos <- 0;
  r.rread <- 0

(* Same hoisting rule as [put_groups]: the loop takes the reader so it
   can publish the final cursor without closing over anything. *)
let rec get_groups r buf base wire z shift pos =
  if pos >= wire then raise (Truncated_frame { wire });
  let g = Bytes.get_uint16_le buf (base + (2 * pos)) in
  let z = z lor ((g land 0x7FFF) lsl shift) in
  if g land 0x8000 = 0 then begin
    r.rpos <- pos + 1;
    z
  end
  else if shift >= 15 * (max_wire_words - 1) then raise (Corrupt_frame { wire })
  else get_groups r buf base wire z (shift + 15) (pos + 1)

let get r =
  if r.rread >= r.rwords then raise (Truncated_frame { wire = r.rwire });
  let z = get_groups r r.rbuf r.rbase r.rwire 0 0 r.rpos in
  r.rread <- r.rread + 1;
  unzigzag z

let remaining r = r.rwords - r.rread
let reader_words r = r.rwords
