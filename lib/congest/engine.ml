open Kdom_graph

type payload = int array
type inbox = (int * payload) list

type 'st algorithm = {
  init : Graph.t -> int -> 'st;
  step : Graph.t -> round:int -> node:int -> 'st -> inbox -> 'st * (int * payload) list;
  halted : 'st -> bool;
}

type stats = { rounds : int; messages : int; max_inflight : int }

exception Round_limit_exceeded of int
exception Congestion_violation of string

(* The model's word is 16 bits; a message of O(log n) bits is a constant
   number of words for any practical n (= the historical default of 4) and
   grows logarithmically beyond 2^32 nodes. *)
let word_bits = 16

let bits_needed n =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x lsr 1) in
  go 0 (max 1 n)

let default_max_words n = max 4 (2 + ((bits_needed n + word_bits - 1) / word_bits))
let default_max_rounds n = 10_000 + (100 * n)

(* Empty slots hold this sentinel.  It must be physically distinct from any
   payload an algorithm can produce: zero-length OCaml arrays are a shared
   atom, so the sentinel is a private 1-element array instead. *)
let none : payload = Array.make 1 min_int

module Sink = struct
  type round_info = {
    round : int;
    delivered : int;
    delivered_words : int;
    receivers : int;
    stepped : int;
    sent : int;
    dropped : int;
    duplicated : int;
    retransmits : int;
  }

  type t = {
    on_message : round:int -> src:int -> dst:int -> words:int -> unit;
    on_round : round_info -> unit;
    on_finish : unit -> unit;
  }

  let null =
    {
      on_message = (fun ~round:_ ~src:_ ~dst:_ ~words:_ -> ());
      on_round = ignore;
      on_finish = ignore;
    }

  let tee a b =
    {
      on_message =
        (fun ~round ~src ~dst ~words ->
          a.on_message ~round ~src ~dst ~words;
          b.on_message ~round ~src ~dst ~words);
      on_round =
        (fun ri ->
          a.on_round ri;
          b.on_round ri);
      on_finish =
        (fun () ->
          a.on_finish ();
          b.on_finish ());
    }

  let counters () =
    let acc = ref [] in
    ( { null with on_round = (fun ri -> acc := ri :: !acc) },
      fun () -> List.rev !acc )

  let activity ~n =
    let sent = Array.make n 0 and received = Array.make n 0 in
    ( {
        null with
        on_message =
          (fun ~round:_ ~src ~dst ~words:_ ->
            sent.(src) <- sent.(src) + 1;
            received.(dst) <- received.(dst) + 1);
      },
      sent,
      received )

  let jsonl ?(messages = false) ?(faults = false) oc =
    {
      on_message =
        (fun ~round ~src ~dst ~words ->
          if messages then
            Printf.fprintf oc
              "{\"type\":\"msg\",\"round\":%d,\"src\":%d,\"dst\":%d,\"words\":%d}\n"
              round src dst words);
      on_round =
        (fun ri ->
          (* With [faults] the three counters are part of every record, so a
             lossy run yields one homogeneous schema that columnar parsers
             can ingest; without it they appear only when non-zero, keeping
             synchronous engine traces byte-stable. *)
          let fault_fields =
            if faults || ri.dropped <> 0 || ri.duplicated <> 0 || ri.retransmits <> 0
            then
              Printf.sprintf ",\"dropped\":%d,\"duplicated\":%d,\"retransmits\":%d"
                ri.dropped ri.duplicated ri.retransmits
            else ""
          in
          Printf.fprintf oc
            "{\"type\":\"round\",\"round\":%d,\"delivered\":%d,\"words\":%d,\
             \"receivers\":%d,\"stepped\":%d,\"sent\":%d%s}\n"
            ri.round ri.delivered ri.delivered_words ri.receivers ri.stepped
            ri.sent fault_fields);
      on_finish = (fun () -> flush oc);
    }
end

(* One direction of the double buffer: slot-indexed payloads plus the
   bookkeeping needed to visit and clear only what was touched. *)
type buf = {
  slots : payload array;  (* port_count; [none] = empty *)
  written : int array;    (* stack of slot ids written this round *)
  mutable wlen : int;
  count : int array;      (* per node: messages addressed to it *)
  active : int array;     (* stack of receivers with count > 0 *)
  mutable alen : int;
  mutable total : int;
  mutable words : int;
}

type t = {
  g : Graph.t;
  n : int;
  ports : int;  (* 2m directed slots *)
  out_off : int array;  (* n+1: slot range of each source *)
  out_dst : int array;  (* destination of each slot, sorted per source *)
  in_off : int array;   (* n+1: in-port range of each destination *)
  in_slot : int array;  (* slots delivering to v, sender-ascending *)
  in_src : int array;   (* sender of in_slot.(j) *)
  slot_of : (int, int) Hashtbl.t;  (* src * n + dst -> slot *)
  buf_a : buf;
  buf_b : buf;
  live : int array;     (* scratch: live node ids, ascending *)
  is_live : bool array;
  mutable running : bool;
  mutable dirty : bool;
}

let make_buf ~n ~ports =
  {
    slots = Array.make (max 1 ports) none;
    written = Array.make (max 1 ports) 0;
    wlen = 0;
    count = Array.make (max 1 n) 0;
    active = Array.make (max 1 n) 0;
    alen = 0;
    total = 0;
    words = 0;
  }

let create g =
  let n = Graph.n g in
  let ports = 2 * Graph.m g in
  let out_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    out_off.(v + 1) <- out_off.(v) + Graph.degree g v
  done;
  let out_dst = Array.make (max 1 ports) (-1) in
  let slot_of = Hashtbl.create (max 16 (2 * ports)) in
  for v = 0 to n - 1 do
    let base = out_off.(v) in
    Array.iteri
      (fun i (u, _) ->
        out_dst.(base + i) <- u;
        Hashtbl.replace slot_of ((v * n) + u) (base + i))
      (Graph.neighbors g v)
  done;
  let in_off = Array.make (n + 1) 0 in
  for s = 0 to ports - 1 do
    let d = out_dst.(s) in
    in_off.(d + 1) <- in_off.(d + 1) + 1
  done;
  for v = 0 to n - 1 do
    in_off.(v + 1) <- in_off.(v + 1) + in_off.(v)
  done;
  let in_slot = Array.make (max 1 ports) 0 in
  let in_src = Array.make (max 1 ports) 0 in
  let fill = Array.copy in_off in
  (* sources visited in ascending id, so each in-port list comes out
     sender-ascending — this is the inbox ordering guarantee *)
  for v = 0 to n - 1 do
    for s = out_off.(v) to out_off.(v + 1) - 1 do
      let d = out_dst.(s) in
      in_slot.(fill.(d)) <- s;
      in_src.(fill.(d)) <- v;
      fill.(d) <- fill.(d) + 1
    done
  done;
  {
    g;
    n;
    ports;
    out_off;
    out_dst;
    in_off;
    in_slot;
    in_src;
    slot_of;
    buf_a = make_buf ~n ~ports;
    buf_b = make_buf ~n ~ports;
    live = Array.make (max 1 n) 0;
    is_live = Array.make (max 1 n) false;
    running = false;
    dirty = false;
  }

let graph e = e.g
let port_count e = e.ports
let degree e v = e.out_off.(v + 1) - e.out_off.(v)

let iter_neighbors e v f =
  for s = e.out_off.(v) to e.out_off.(v + 1) - 1 do
    f e.out_dst.(s)
  done

let find_port e ~src ~dst =
  match Hashtbl.find e.slot_of ((src * e.n) + dst) with
  | s -> s
  | exception Not_found -> -1

let reset_buf b =
  Array.fill b.slots 0 (Array.length b.slots) none;
  Array.fill b.count 0 (Array.length b.count) 0;
  b.wlen <- 0;
  b.alen <- 0;
  b.total <- 0;
  b.words <- 0

let exec_unguarded ?max_rounds ?max_words ?(sink = Sink.null) e algo =
  let n = e.n in
  let g = e.g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> default_max_rounds n
  in
  let max_words =
    match max_words with Some w -> w | None -> default_max_words n
  in
  if e.dirty then begin
    (* a previous run aborted mid-round (violation / limit); scrub *)
    reset_buf e.buf_a;
    reset_buf e.buf_b
  end;
  e.running <- true;
  e.dirty <- true;
  let states = Array.init n (fun v -> algo.init g v) in
  let live = e.live and is_live = e.is_live in
  let live_len = ref 0 in
  for v = 0 to n - 1 do
    if algo.halted states.(v) then is_live.(v) <- false
    else begin
      is_live.(v) <- true;
      live.(!live_len) <- v;
      incr live_len
    end
  done;
  let cur = ref e.buf_a and nxt = ref e.buf_b in
  let messages = ref 0 and max_inflight = ref 0 and round = ref 0 in
  let instrumented = sink != Sink.null in
  while !live_len > 0 || (!nxt).total > 0 do
    if !round > max_rounds then raise (Round_limit_exceeded !round);
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp;
    let dv = !cur and sd = !nxt in
    let this_round = dv.total in
    max_inflight := max !max_inflight this_round;
    messages := !messages + this_round;
    let r = !round in
    let stepped = !live_len in
    (* The reference semantics raise at the first offending node in id
       order; a halted receiver competes with live-node send violations.
       [v_min] is the smallest halted node holding undeliverable mail. *)
    let v_min = ref (-1) in
    for i = 0 to dv.alen - 1 do
      let v = dv.active.(i) in
      if (not is_live.(v)) && dv.count.(v) > 0 && (!v_min < 0 || v < !v_min) then
        v_min := v
    done;
    let compacted = ref false in
    for i = 0 to !live_len - 1 do
      let v = live.(i) in
      if !v_min >= 0 && !v_min < v then
        raise
          (Congestion_violation
             (Printf.sprintf "round %d: halted node %d received a message" r !v_min));
      let inbox =
        if dv.count.(v) = 0 then []
        else begin
          (* in-ports are sender-ascending; prepend while scanning
             backwards so the list comes out ascending too *)
          let acc = ref [] in
          for j = e.in_off.(v + 1) - 1 downto e.in_off.(v) do
            let p = dv.slots.(e.in_slot.(j)) in
            if p != none then acc := (e.in_src.(j), p) :: !acc
          done;
          !acc
        end
      in
      let st, outbox = algo.step g ~round:r ~node:v states.(v) inbox in
      states.(v) <- st;
      List.iter
        (fun (u, p) ->
          let slot =
            match Hashtbl.find e.slot_of ((v * n) + u) with
            | s -> s
            | exception Not_found ->
              raise
                (Congestion_violation
                   (Printf.sprintf "round %d: node %d sent to non-neighbor %d" r v u))
          in
          if sd.slots.(slot) != none then
            raise
              (Congestion_violation
                 (Printf.sprintf "round %d: node %d sent twice over edge to %d" r v u));
          let w = Array.length p in
          if w > max_words then
            raise
              (Congestion_violation
                 (Printf.sprintf "round %d: node %d payload of %d words exceeds %d"
                    r v w max_words));
          sd.slots.(slot) <- p;
          sd.written.(sd.wlen) <- slot;
          sd.wlen <- sd.wlen + 1;
          if sd.count.(u) = 0 then begin
            sd.active.(sd.alen) <- u;
            sd.alen <- sd.alen + 1
          end;
          sd.count.(u) <- sd.count.(u) + 1;
          sd.total <- sd.total + 1;
          sd.words <- sd.words + w;
          if instrumented then sink.on_message ~round:r ~src:v ~dst:u ~words:w)
        outbox;
      if algo.halted st then begin
        is_live.(v) <- false;
        compacted := true
      end
    done;
    if !v_min >= 0 then
      raise
        (Congestion_violation
           (Printf.sprintf "round %d: halted node %d received a message" r !v_min));
    let receivers = dv.alen and delivered_words = dv.words in
    for j = 0 to dv.wlen - 1 do
      dv.slots.(dv.written.(j)) <- none
    done;
    for i = 0 to dv.alen - 1 do
      dv.count.(dv.active.(i)) <- 0
    done;
    dv.wlen <- 0;
    dv.alen <- 0;
    dv.total <- 0;
    dv.words <- 0;
    if !compacted then begin
      (* stable compaction keeps the live list ascending *)
      let w = ref 0 in
      for i = 0 to !live_len - 1 do
        let v = live.(i) in
        if is_live.(v) then begin
          live.(!w) <- v;
          incr w
        end
      done;
      live_len := !w
    end;
    if instrumented then
      sink.on_round
        {
          round = r;
          delivered = this_round;
          delivered_words;
          receivers;
          stepped;
          sent = sd.total;
          dropped = 0;
          duplicated = 0;
          retransmits = 0;
        };
    incr round
  done;
  e.running <- false;
  e.dirty <- false;
  if instrumented then sink.on_finish ();
  (states, { rounds = !round; messages = !messages; max_inflight = !max_inflight })

let exec ?max_rounds ?max_words ?sink e algo =
  if e.running then
    invalid_arg "Engine.exec: engine already running (re-entrant call)";
  (* clear [running] on abnormal exit so the engine stays usable; [dirty]
     stays set, forcing a buffer scrub on the next exec *)
  try exec_unguarded ?max_rounds ?max_words ?sink e algo
  with exn ->
    e.running <- false;
    raise exn

let run ?max_rounds ?max_words ?sink g algo =
  exec ?max_rounds ?max_words ?sink (create g) algo
