open Kdom_graph

type payload = int array
type inbox = (int * payload) list

type stats = { rounds : int; messages : int; max_inflight : int }

exception Round_limit_exceeded of int
exception Congestion_violation of string
exception Duplicate_edge of { src : int; dst : int }

(* The model's word is 16 bits; a message of O(log n) bits is a constant
   number of words for any practical n (= the historical default of 4) and
   grows logarithmically beyond 2^32 nodes. *)
let word_bits = 16

let bits_needed n =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x lsr 1) in
  go 0 (max 1 n)

let default_max_words n = max 4 (2 + ((bits_needed n + word_bits - 1) / word_bits))
let default_max_rounds n = 10_000 + (100 * n)

(* A zero-copy view over the engine's packed delivery arena: flat sender
   and slot arrays, filled in sender-ascending order.  Each entry is either
   a reference into the arena ([slot >= 0]: the frame lives packed at byte
   offset [slot * a_stride]) or a boxed payload ([slot = -1], the shape
   [of_list] builds for the reference simulator and the async layer).  The
   engine reuses one arena for every step, so a view is only valid for the
   duration of the [step] call it was passed to; [read] repositions a
   shared decoder, so at most one frame is being read at a time. *)
module Inbox = struct
  type t = {
    mutable src : int array;
    mutable slot : int array; (* arena slot of entry i, -1 = boxed *)
    mutable pay : payload array; (* boxed payloads for slot = -1 entries *)
    mutable len : int;
    (* Arena attachment, installed by the engine per delivery phase. *)
    mutable a_data : Bytes.t;
    mutable a_wire : int array;
    mutable a_wlog : int array;
    mutable a_stride : int;
    rd : Codec.reader; (* shared repositionable frame decoder *)
    wr : Codec.writer; (* scratch encoder for [read] on boxed entries *)
    (* Lazy arena fill: the executors mark the stepping node instead of
       scanning its in-ports up front; the scan runs on the first
       accessor call, so kernels that ignore their mail this step
       (flood-style broadcasts) never pay for it. *)
    mutable fill_node : int; (* node awaiting a deferred fill, -1 = none *)
    mutable filler : t -> unit; (* installed per executor *)
  }

  let no_fill (_ : t) = ()

  let create ~cap () =
    {
      src = Array.make (max 1 cap) 0;
      slot = Array.make (max 1 cap) (-1);
      pay = Array.make (max 1 cap) [||];
      len = 0;
      a_data = Bytes.empty;
      a_wire = [||];
      a_wlog = [||];
      a_stride = 0;
      rd = Codec.reader ();
      wr = Codec.writer ();
      fill_node = -1;
      filler = no_fill;
    }

  let ensure t = if t.fill_node >= 0 then t.filler t

  let attach t ~data ~wire ~wlog ~stride =
    t.a_data <- data;
    t.a_wire <- wire;
    t.a_wlog <- wlog;
    t.a_stride <- stride

  let length t =
    ensure t;
    t.len

  let is_empty t =
    ensure t;
    t.len = 0

  let check t i =
    ensure t;
    if i < 0 || i >= t.len then invalid_arg "Engine.Inbox: index out of bounds"

  let sender t i =
    check t i;
    t.src.(i)

  let payload_unchecked t i =
    let s = t.slot.(i) in
    if s < 0 then t.pay.(i)
    else
      Codec.decode t.a_data ~base:(s * t.a_stride) ~wire:t.a_wire.(s)
        ~words:t.a_wlog.(s)

  let payload t i =
    check t i;
    payload_unchecked t i

  let words t i =
    check t i;
    let s = t.slot.(i) in
    if s < 0 then Array.length t.pay.(i) else t.a_wlog.(s)

  let read t i =
    check t i;
    let s = t.slot.(i) in
    if s >= 0 then
      Codec.attach_reader t.rd t.a_data ~base:(s * t.a_stride)
        ~wire:t.a_wire.(s) ~words:t.a_wlog.(s)
    else begin
      let p = t.pay.(i) in
      Codec.scratch_writer t.wr ~budget:(Array.length p);
      Array.iter (Codec.put t.wr) p;
      Codec.attach_reader t.rd (Codec.writer_bytes t.wr) ~base:0
        ~wire:(Codec.wire t.wr) ~words:(Codec.words t.wr)
    end;
    t.rd

  let iter f t =
    ensure t;
    for i = 0 to t.len - 1 do
      f t.src.(i) (payload_unchecked t i)
    done

  let fold f init t =
    ensure t;
    let acc = ref init in
    for i = 0 to t.len - 1 do
      acc := f !acc t.src.(i) (payload_unchecked t i)
    done;
    !acc

  let to_list t =
    ensure t;
    let acc = ref [] in
    for i = t.len - 1 downto 0 do
      acc := (t.src.(i), payload_unchecked t i) :: !acc
    done;
    !acc

  let of_list l =
    let n = List.length l in
    let t = create ~cap:(max 1 n) () in
    List.iter
      (fun (u, p) ->
        t.src.(t.len) <- u;
        t.slot.(t.len) <- -1;
        t.pay.(t.len) <- p;
        t.len <- t.len + 1)
      l;
    t
end

(* Wake-up hints: when does a node need to be stepped again?  Consulted
   after every [step]; the latest hint replaces any earlier one.  In every
   mode a delivered message wakes the node — the hint only controls whether
   it is also stepped on message-free rounds. *)
type wake =
  | Always  (* step every round while live (the legacy dense schedule) *)
  | Next  (* step in the next round even without messages *)
  | At of int  (* step at that absolute round; past rounds schedule nothing *)
  | OnMessage  (* step only when a message arrives *)

type 'st algorithm = {
  init : Graph.t -> int -> 'st;
  step : Graph.t -> round:int -> node:int -> 'st -> Inbox.t -> 'st * (int * payload) list;
  halted : 'st -> bool;
  wake : 'st -> wake;
}

let always _ = Always
let list_step step g ~round ~node st ib = step g ~round ~node st (Inbox.to_list ib)

(* The allocation-free send path.  An emitter is a reusable cursor the
   executor attaches to its own send machinery: [start] positions the
   shared writer directly on the destination slot's arena region (after
   the same non-neighbor / duplicate-edge checks the list path performs),
   the algorithm [Codec.put]s the frame's words, and [commit] publishes
   the frame — no payload array, no cons cell, no copy.  [frame1]..
   [frame4] are closure-free shorthands for fixed-shape frames; [send]
   is the closure flavor from the issue statement. *)
module Emit = struct
  type t = {
    ew : Codec.writer;
    mutable enode : int; (* current sender, set by the executor *)
    mutable eslot : int; (* destination slot of the open frame *)
    mutable edst : int;
    mutable edead : bool; (* open frame targets a churn-dead endpoint *)
    mutable eopen : bool;
    mutable estart : t -> int -> Codec.writer; (* installed per executor *)
    mutable ecommit : t -> unit;
    mutable ebroadcast1 : t -> int -> unit;
  }

  let unattached : t -> int -> Codec.writer =
   fun _ _ -> invalid_arg "Engine.Emit: emitter not attached to an executor"

  let unattached_commit : t -> unit =
   fun _ -> invalid_arg "Engine.Emit: emitter not attached to an executor"

  let unattached_broadcast : t -> int -> unit =
   fun _ _ -> invalid_arg "Engine.Emit: emitter not attached to an executor"

  let make () =
    {
      ew = Codec.writer ();
      enode = -1;
      eslot = -1;
      edst = -1;
      edead = false;
      eopen = false;
      estart = unattached;
      ecommit = unattached_commit;
      ebroadcast1 = unattached_broadcast;
    }

  let start t ~dst = t.estart t dst
  let commit t = t.ecommit t
  let broadcast1 t a = t.ebroadcast1 t a

  let send t ~dst f =
    f (t.estart t dst);
    t.ecommit t

  let frame1 t ~dst a =
    let w = t.estart t dst in
    Codec.put w a;
    t.ecommit t

  let frame2 t ~dst a b =
    let w = t.estart t dst in
    Codec.put w a;
    Codec.put w b;
    t.ecommit t

  let frame3 t ~dst a b c =
    let w = t.estart t dst in
    Codec.put w a;
    Codec.put w b;
    Codec.put w c;
    t.ecommit t

  let frame4 t ~dst a b c d =
    let w = t.estart t dst in
    Codec.put w a;
    Codec.put w b;
    Codec.put w c;
    Codec.put w d;
    t.ecommit t
end

type 'st ealgorithm = {
  einit : Graph.t -> int -> 'st;
  estep :
    Graph.t -> round:int -> node:int -> 'st -> Inbox.t -> Emit.t -> 'st;
  ehalted : 'st -> bool;
  ewake : 'st -> wake;
}

(* Internal sum the executors dispatch on: both the legacy list shape and
   the emit shape run through the same scheduling/delivery machinery. *)
type 'st anyalg = A_list of 'st algorithm | A_emit of 'st ealgorithm

module Sink = struct
  type round_info = {
    round : int;
    delivered : int;
    delivered_words : int;
    delivered_bits : int;
    receivers : int;
    stepped : int;
    skipped : int;
    woken : int;
    sent : int;
    dropped : int;
    duplicated : int;
    retransmits : int;
    corrupted : int;
    crashed : int;
    arrived : int;
    departed : int;
    inserted : int;
  }

  type t = {
    on_message : round:int -> src:int -> dst:int -> words:int -> unit;
    on_round : round_info -> unit;
    on_finish : unit -> unit;
  }

  let null =
    {
      on_message = (fun ~round:_ ~src:_ ~dst:_ ~words:_ -> ());
      on_round = ignore;
      on_finish = ignore;
    }

  let tee a b =
    {
      on_message =
        (fun ~round ~src ~dst ~words ->
          a.on_message ~round ~src ~dst ~words;
          b.on_message ~round ~src ~dst ~words);
      on_round =
        (fun ri ->
          a.on_round ri;
          b.on_round ri);
      on_finish =
        (fun () ->
          a.on_finish ();
          b.on_finish ());
    }

  let counters () =
    let acc = ref [] in
    ( { null with on_round = (fun ri -> acc := ri :: !acc) },
      fun () -> List.rev !acc )

  (* Associative, commutative merge of two views of the same round: every
     field is a sum except [round], which must agree.  This is the combine
     the sharded executor folds per-shard counters with at the barrier, and
     it makes [counters]/[activity] aggregation merge-safe: teeing a sink
     across shards and combining per-round records is equivalent to one
     sink observing the whole round. *)
  let combine_round_info a b =
    if a.round <> b.round then
      invalid_arg "Engine.Sink.combine_round_info: round mismatch";
    {
      round = a.round;
      delivered = a.delivered + b.delivered;
      delivered_words = a.delivered_words + b.delivered_words;
      delivered_bits = a.delivered_bits + b.delivered_bits;
      receivers = a.receivers + b.receivers;
      stepped = a.stepped + b.stepped;
      skipped = a.skipped + b.skipped;
      woken = a.woken + b.woken;
      sent = a.sent + b.sent;
      dropped = a.dropped + b.dropped;
      duplicated = a.duplicated + b.duplicated;
      retransmits = a.retransmits + b.retransmits;
      corrupted = a.corrupted + b.corrupted;
      crashed = a.crashed + b.crashed;
      arrived = a.arrived + b.arrived;
      departed = a.departed + b.departed;
      inserted = a.inserted + b.inserted;
    }

  let empty_round_info round =
    {
      round;
      delivered = 0;
      delivered_words = 0;
      delivered_bits = 0;
      receivers = 0;
      stepped = 0;
      skipped = 0;
      woken = 0;
      sent = 0;
      dropped = 0;
      duplicated = 0;
      retransmits = 0;
      corrupted = 0;
      crashed = 0;
      arrived = 0;
      departed = 0;
      inserted = 0;
    }

  let activity ~n =
    let sent = Array.make n 0 and received = Array.make n 0 in
    ( {
        null with
        on_message =
          (fun ~round:_ ~src ~dst ~words:_ ->
            sent.(src) <- sent.(src) + 1;
            received.(dst) <- received.(dst) + 1);
      },
      sent,
      received )

  let jsonl ?(messages = false) ?(faults = false) oc =
    {
      on_message =
        (fun ~round ~src ~dst ~words ->
          if messages then
            Printf.fprintf oc
              "{\"type\":\"msg\",\"round\":%d,\"src\":%d,\"dst\":%d,\"words\":%d}\n"
              round src dst words);
      on_round =
        (fun ri ->
          (* With [faults] the three counters are part of every record, so a
             lossy run yields one homogeneous schema that columnar parsers
             can ingest; without it they appear only when non-zero, keeping
             synchronous engine traces byte-stable. *)
          let fault_fields =
            if
              faults || ri.dropped <> 0 || ri.duplicated <> 0
              || ri.retransmits <> 0 || ri.corrupted <> 0 || ri.crashed <> 0
              || ri.arrived <> 0 || ri.departed <> 0 || ri.inserted <> 0
            then
              Printf.sprintf
                ",\"dropped\":%d,\"duplicated\":%d,\"retransmits\":%d,\
                 \"corrupted\":%d,\"crashed\":%d,\"arrived\":%d,\
                 \"departed\":%d,\"inserted\":%d"
                ri.dropped ri.duplicated ri.retransmits ri.corrupted
                ri.crashed ri.arrived ri.departed ri.inserted
            else ""
          in
          Printf.fprintf oc
            "{\"type\":\"round\",\"round\":%d,\"delivered\":%d,\"words\":%d,\
             \"bits\":%d,\"receivers\":%d,\"stepped\":%d,\"skipped\":%d,\
             \"woken\":%d,\"sent\":%d%s}\n"
            ri.round ri.delivered ri.delivered_words ri.delivered_bits
            ri.receivers ri.stepped ri.skipped ri.woken ri.sent fault_fields);
      on_finish = (fun () -> flush oc);
    }
end

(* One direction of the double buffer: slot-indexed payloads plus the
   bookkeeping needed to visit and clear only what was touched. *)
type buf = {
  mutable data : Bytes.t; (* packed frame arena, [stride] bytes per slot;
                             sized lazily at [exec] once max_words is known *)
  wire : int array;       (* per slot: wire words of the frame, -1 = empty *)
  wlog : int array;       (* per slot: logical words of the frame *)
  written : int array;    (* stack of slot ids written this round *)
  mutable wlen : int;
  count : int array;      (* per node: messages addressed to it *)
  active : int array;     (* stack of receivers with count > 0 *)
  mutable alen : int;
  mutable total : int;
  mutable words : int;    (* logical words buffered *)
  mutable bits : int;     (* measured wire bits buffered *)
}

type t = {
  g : Graph.t;
  n : int;
  ports : int;  (* 2m directed slots *)
  out_off : int array;  (* n+1: slot range of each source *)
  out_dst : int array;  (* destination of each slot, strictly ascending per source *)
  in_off : int array;   (* n+1: in-port range of each destination *)
  in_slot : int array;  (* slots delivering to v, sender-ascending *)
  in_src : int array;   (* sender of in_slot.(j) *)
  buf_a : buf;
  buf_b : buf;
  live : int array;     (* scratch: live node ids, ascending *)
  is_live : bool array;
  (* activation frontier: the nodes stepped in the current round *)
  frontier : int array;
  fstamp : int array;   (* fstamp.(v) = r  <=>  v already in round r's frontier *)
  is_always : bool array;
  always : int array;   (* nodes in Always mode, ascending when clean *)
  wake_at : int array;  (* pending timer round per node, -1 = none *)
  mutable buckets : int list array;  (* buckets.(r) = nodes to wake at round r *)
  ib : Inbox.t;         (* reusable inbox arena, sized for the max in-degree *)
  mutable running : bool;
  mutable dirty : bool;
}

let make_buf ~n ~ports =
  {
    data = Bytes.empty;
    wire = Array.make (max 1 ports) (-1);
    wlog = Array.make (max 1 ports) 0;
    written = Array.make (max 1 ports) 0;
    wlen = 0;
    count = Array.make (max 1 n) 0;
    active = Array.make (max 1 n) 0;
    alen = 0;
    total = 0;
    words = 0;
    bits = 0;
  }

(* Arena stride for a given per-message word budget: every logical word
   needs at most [Codec.max_wire_words] 16-bit wire words, plus room for
   the one CRC guard word per frame when integrity guards are on. *)
let stride_for ?(guard = false) ~max_words () =
  (2 * Codec.max_wire_words * max 1 max_words)
  + if guard then 2 * Codec.guard_words else 0

let ensure_arena buf ~ports ~stride =
  let need = max 2 (ports * stride) in
  if Bytes.length buf.data < need then buf.data <- Bytes.create need

let create g =
  let n = Graph.n g in
  let ports = 2 * Graph.m g in
  let out_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    out_off.(v + 1) <- out_off.(v) + Graph.degree g v
  done;
  let out_dst = Array.make (max 1 ports) (-1) in
  for v = 0 to n - 1 do
    let base = out_off.(v) in
    Array.iteri (fun i (u, _) -> out_dst.(base + i) <- u) (Graph.neighbors g v)
  done;
  (* The send path binary-searches each source's [out_dst] segment, so the
     port map is only correct on simple graphs: per source the destinations
     must be strictly ascending.  {!Graph} guarantees this for its public
     constructors; verify anyway so a duplicated (src, dst) port can never
     be silently shadowed (with the old hashtable map the last duplicate
     won), and so self-loops cannot alias a slot to its own inbox. *)
  for v = 0 to n - 1 do
    let base = out_off.(v) and stop = out_off.(v + 1) in
    for s = base to stop - 1 do
      if out_dst.(s) = v then
        invalid_arg (Printf.sprintf "Engine.create: self-loop at node %d" v);
      if s > base && out_dst.(s) = out_dst.(s - 1) then
        raise (Duplicate_edge { src = v; dst = out_dst.(s) });
      if s > base && out_dst.(s) < out_dst.(s - 1) then
        invalid_arg
          (Printf.sprintf "Engine.create: adjacency of node %d not sorted" v)
    done
  done;
  let in_off = Array.make (n + 1) 0 in
  for s = 0 to ports - 1 do
    let d = out_dst.(s) in
    in_off.(d + 1) <- in_off.(d + 1) + 1
  done;
  for v = 0 to n - 1 do
    in_off.(v + 1) <- in_off.(v + 1) + in_off.(v)
  done;
  let in_slot = Array.make (max 1 ports) 0 in
  let in_src = Array.make (max 1 ports) 0 in
  let fill = Array.copy in_off in
  (* sources visited in ascending id, so each in-port list comes out
     sender-ascending — this is the inbox ordering guarantee *)
  for v = 0 to n - 1 do
    for s = out_off.(v) to out_off.(v + 1) - 1 do
      let d = out_dst.(s) in
      in_slot.(fill.(d)) <- s;
      in_src.(fill.(d)) <- v;
      fill.(d) <- fill.(d) + 1
    done
  done;
  let max_indeg = ref 0 in
  for v = 0 to n - 1 do
    max_indeg := max !max_indeg (in_off.(v + 1) - in_off.(v))
  done;
  {
    g;
    n;
    ports;
    out_off;
    out_dst;
    in_off;
    in_slot;
    in_src;
    buf_a = make_buf ~n ~ports;
    buf_b = make_buf ~n ~ports;
    live = Array.make (max 1 n) 0;
    is_live = Array.make (max 1 n) false;
    frontier = Array.make (max 1 n) 0;
    fstamp = Array.make (max 1 n) (-1);
    is_always = Array.make (max 1 n) false;
    always = Array.make (max 1 n) 0;
    wake_at = Array.make (max 1 n) (-1);
    buckets = Array.make 16 [];
    ib = Inbox.create ~cap:!max_indeg ();
    running = false;
    dirty = false;
  }

let graph e = e.g
let port_count e = e.ports
let degree e v = e.out_off.(v + 1) - e.out_off.(v)

let iter_neighbors e v f =
  for s = e.out_off.(v) to e.out_off.(v + 1) - 1 do
    f e.out_dst.(s)
  done

(* Binary search over the per-source sorted CSR segment: O(log deg src), no
   hashing, no O(m) side table.  Any [dst] outside the segment — including
   ids outside [0, n) — comes back as -1. *)
let find_port e ~src ~dst =
  if src < 0 || src >= e.n then -1
  else begin
    let lo = ref e.out_off.(src) and hi = ref e.out_off.(src + 1) in
    let res = ref (-1) in
    while !res < 0 && !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      let d = e.out_dst.(mid) in
      if d = dst then res := mid else if d < dst then lo := mid + 1 else hi := mid
    done;
    !res
  end

(* ------------------------------------------------------------------ *)
(* Topology churn: a deterministic schedule of permanent node fail-stops
   and directed-edge down/up events, compiled against the engine's port map
   into a mutable liveness view.  The CSR arrays are never rebuilt — a dead
   port merely drops the frames routed through it, and a crashed node's
   slots are skipped like any other empty slot by the arena inbox fill. *)
module Churn = struct
  type event =
    | Crash of { node : int; at : int }
    | Edge_down of { src : int; dst : int; at : int }
    | Edge_up of { src : int; dst : int; at : int }
    | Edge_add of { src : int; dst : int; at : int }
    | Arrive of { node : int; at : int }
    | Depart of { node : int; at : int }

  let round_of = function
    | Crash { at; _ } | Edge_down { at; _ } | Edge_up { at; _ }
    | Edge_add { at; _ } | Arrive { at; _ } | Depart { at; _ } -> at

  (* Pre-resolved form: the port lookup happens once, at compile time. *)
  type op =
    | Op_crash of int
    | Op_down of int
    | Op_up of int
    | Op_add of int
    | Op_arrive of int
    | Op_depart of int

  type delta = {
    d_crashed : int;
    d_arrived : int;
    d_departed : int;
    d_inserted : int;
  }

  let no_delta = { d_crashed = 0; d_arrived = 0; d_departed = 0; d_inserted = 0 }

  type t = {
    events : event array;  (* sorted by round, compile-order stable *)
    ops : op array;        (* events.(i) resolved against the port map *)
    pairs : (int * int) array;  (* (src, dst) of edge events; (-1, -1) else *)
    crashed : bool array;  (* n: current liveness view *)
    dormant : bool array;  (* n: reserved node not yet arrived *)
    edge_down : bool array;  (* ports: current per-slot view *)
    down_pairs : (int * int, unit) Hashtbl.t;
        (* the (src, dst) view [advance] maintains for port-map-less
           consumers (the reference runtime) *)
    mutable cursor : int;
  }

  let compile e events =
    let n = e.n in
    let check_node what node =
      if node < 0 || node >= n then
        invalid_arg (Printf.sprintf "Engine.Churn: %s of non-node %d" what node)
    in
    let check_round at =
      if at < 0 then
        invalid_arg (Printf.sprintf "Engine.Churn: event at negative round %d" at)
    in
    let resolve ev =
      match ev with
      | Crash { node; at } ->
        check_node "crash" node;
        check_round at;
        Op_crash node
      | Arrive { node; at } ->
        check_node "arrival" node;
        check_round at;
        Op_arrive node
      | Depart { node; at } ->
        check_node "departure" node;
        check_round at;
        Op_depart node
      | Edge_down { src; dst; at } | Edge_up { src; dst; at }
      | Edge_add { src; dst; at } ->
        check_round at;
        let slot = find_port e ~src ~dst in
        if slot < 0 then
          invalid_arg
            (Printf.sprintf "Engine.Churn: event on non-edge (%d, %d)" src dst);
        (match ev with
        | Edge_down _ -> Op_down slot
        | Edge_add _ -> Op_add slot
        | _ -> Op_up slot)
    in
    let tagged = List.mapi (fun i ev -> (round_of ev, i, ev)) events in
    let sorted =
      List.sort (fun (r1, i1, _) (r2, i2, _) -> compare (r1, i1) (r2, i2)) tagged
    in
    let events = Array.of_list (List.map (fun (_, _, ev) -> ev) sorted) in
    {
      events;
      ops = Array.map resolve events;
      pairs =
        Array.map
          (function
            | Edge_down { src; dst; _ } | Edge_up { src; dst; _ }
            | Edge_add { src; dst; _ } -> (src, dst)
            | Crash _ | Arrive _ | Depart _ -> (-1, -1))
          events;
      crashed = Array.make (max 1 n) false;
      dormant = Array.make (max 1 n) false;
      edge_down = Array.make (max 1 e.ports) false;
      down_pairs = Hashtbl.create 8;
      cursor = 0;
    }

  let events t = Array.to_list t.events

  let last_round t =
    let len = Array.length t.events in
    if len = 0 then -1 else round_of t.events.(len - 1)

  (* A schedule's round-0 view: reserved capacity starts absent.  A slot
     with a pending [Edge_add] is down until the event fires; a node with a
     pending [Arrive] is dormant until it fires — the union CSR carries
     them from the start, the liveness view hides them. *)
  let reset t =
    Array.fill t.crashed 0 (Array.length t.crashed) false;
    Array.fill t.dormant 0 (Array.length t.dormant) false;
    Array.fill t.edge_down 0 (Array.length t.edge_down) false;
    Hashtbl.reset t.down_pairs;
    Array.iteri
      (fun i op ->
        match op with
        | Op_add slot ->
          t.edge_down.(slot) <- true;
          Hashtbl.replace t.down_pairs t.pairs.(i) ()
        | Op_arrive v -> t.dormant.(v) <- true
        | _ -> ())
      t.ops;
    t.cursor <- 0

  let crashed t v = t.crashed.(v)
  let dormant t v = t.dormant.(v)
  let edge_down t ~src ~dst = Hashtbl.mem t.down_pairs (src, dst)

  (* The buffer-less application used by the reference runtime: advance the
     cursor through every event due by [round], updating the liveness views
     only.  (The engine's own exec inlines this so it can also drop the
     in-flight frames the events kill.)  Returns the per-kind counts of
     events that took effect. *)
  let advance t ~round =
    let len = Array.length t.ops in
    let d = ref no_delta in
    while t.cursor < len && round_of t.events.(t.cursor) <= round do
      (match t.ops.(t.cursor) with
      | Op_crash v ->
        if not t.crashed.(v) then begin
          t.crashed.(v) <- true;
          d := { !d with d_crashed = !d.d_crashed + 1 }
        end
      | Op_depart v ->
        if not t.crashed.(v) then begin
          t.crashed.(v) <- true;
          d := { !d with d_departed = !d.d_departed + 1 }
        end
      | Op_arrive v ->
        if t.dormant.(v) then begin
          t.dormant.(v) <- false;
          d := { !d with d_arrived = !d.d_arrived + 1 }
        end
      | Op_down slot ->
        t.edge_down.(slot) <- true;
        Hashtbl.replace t.down_pairs t.pairs.(t.cursor) ()
      | Op_up slot ->
        t.edge_down.(slot) <- false;
        Hashtbl.remove t.down_pairs t.pairs.(t.cursor)
      | Op_add slot ->
        if t.edge_down.(slot) then begin
          t.edge_down.(slot) <- false;
          Hashtbl.remove t.down_pairs t.pairs.(t.cursor);
          d := { !d with d_inserted = !d.d_inserted + 1 }
        end);
      t.cursor <- t.cursor + 1
    done;
    !d

  (* Replay the whole schedule, regardless of when the run stopped: the
     oracle judges eventual k-domination against the post-churn topology.
     In a full replay every scheduled arrival and insertion fires, so a
     node is finally dead iff it ever crashes or departs (both permanent),
     and an edge is finally down iff its last down/up/add event is a
     down. *)
  let final_alive t =
    let alive = Array.make (Array.length t.crashed) true in
    Array.iter
      (function
        | Crash { node; _ } | Depart { node; _ } -> alive.(node) <- false
        | _ -> ())
      t.events;
    alive

  let final_edges_down t =
    let down = Hashtbl.create 8 in
    Array.iter
      (function
        | Edge_down { src; dst; _ } -> Hashtbl.replace down (src, dst) ()
        | Edge_up { src; dst; _ } | Edge_add { src; dst; _ } ->
          Hashtbl.remove down (src, dst)
        | Crash _ | Arrive _ | Depart _ -> ())
      t.events;
    Hashtbl.fold (fun e () acc -> e :: acc) down [] |> List.sort compare
end

(* ------------------------------------------------------------------ *)
(* Wire corruption: a deterministic model of a lying network.  Frames in
   flight are garbled (bursts of bit flips on the packed wire words) or
   truncated, and every decision is a pure hash of (cseed, delivery
   round, slot, lane): the verdict for a frame does not depend on
   iteration order, so the sequential, emit, sharded and reference paths
   corrupt — and drop — exactly the same frames.  Enabling corruption
   forces the codec guard word onto every frame; the delivery pass
   verifies each garbled frame and kills what the guard catches, so
   algorithm code never decodes a lying byte.  (An undetected error
   needs an even-weight pattern spread over 17+ bits that also collides
   the CRC *and* stays structurally decodable: probability under 2^-16
   per corrupted frame; the structural check keeps even that case from
   crashing the decoder.) *)
module Corrupt = struct
  type counters = {
    mutable injected : int;  (* frames garbled or truncated in flight *)
    mutable detected : int;  (* garbled frames the guard word caught *)
    mutable truncated : int; (* truncations (always detected) *)
  }

  let fresh_counters () = { injected = 0; detected = 0; truncated = 0 }

  type spec = {
    flip : float;     (* per-wire-word garble probability *)
    burst : int;      (* consecutive wire words garbled per hit, >= 1 *)
    truncate : float; (* per-frame truncation probability *)
    ramp : (int * float) list;
        (* (round, intensity) steps, ascending: the probabilities are
           multiplied by the last step at or before the current round
           (1.0 before the first step).  Chaos storms use this to ramp
           intensity up and carve quiescent windows out. *)
    cseed : int;
    tally : counters; (* reset by the executor at the start of each run *)
  }

  let make ?(flip = 0.) ?(burst = 1) ?(truncate = 0.) ?(ramp = []) ~seed () =
    { flip; burst; truncate; ramp; cseed = seed; tally = fresh_counters () }

  let validate s =
    let prob what p =
      if not (p >= 0. && p <= 1.) then
        invalid_arg
          (Printf.sprintf "Engine.Corrupt: %s %g not in [0, 1]" what p)
    in
    prob "flip probability" s.flip;
    prob "truncate probability" s.truncate;
    if s.burst < 1 then
      invalid_arg (Printf.sprintf "Engine.Corrupt: burst %d < 1" s.burst);
    let last = ref (-1) in
    List.iter
      (fun (r, m) ->
        if r < 0 then
          invalid_arg
            (Printf.sprintf "Engine.Corrupt: ramp step at negative round %d" r);
        if r <= !last then
          invalid_arg "Engine.Corrupt: ramp rounds not strictly ascending";
        if m < 0. then
          invalid_arg
            (Printf.sprintf "Engine.Corrupt: negative ramp intensity %g" m);
        last := r)
      s.ramp

  let intensity s ~round =
    let m = ref 1.0 in
    List.iter (fun (r, mult) -> if r <= round then m := mult) s.ramp;
    !m

  (* SplitMix-style finalizer over OCaml's 63-bit ints (multiplies wrap
     mod 2^63; the constants are odd and fit the int range). *)
  let mix z =
    let z = z * 0x2545F4914F6CDD1D in
    let z = z lxor (z lsr 29) in
    let z = z * 0x1D8E4E27C47D124F in
    let z = z lxor (z lsr 32) in
    z land max_int

  let decide ~cseed ~round ~slot ~lane =
    mix (mix (mix (cseed + round) + slot) + lane)

  (* probabilities compare the hash's low 32 bits against an integer
     threshold, so the verdict is float-rounding-free and identical
     everywhere *)
  let threshold p =
    let p = if p < 0. then 0. else if p > 1. then 1. else p in
    int_of_float (p *. 4294967296.)

  let hit h thr = h land 0xFFFFFFFF < thr

  (* a garble mask is never zero: a hit always changes its word *)
  let mask h =
    let m = (h lsr 24) land 0xFFFF in
    if m = 0 then 1 else m
end

let reset_buf b =
  Array.fill b.wire 0 (Array.length b.wire) (-1);
  Array.fill b.count 0 (Array.length b.count) 0;
  b.wlen <- 0;
  b.alen <- 0;
  b.total <- 0;
  b.words <- 0;
  b.bits <- 0

(* In-place heapsort of [a.(0) .. a.(len-1)]: the frontier must be stepped
   in ascending node id (the reference's visiting order), and its three
   sources — timer buckets, receiver stack, always-list — append out of
   order.  Heapsort keeps the cost a guaranteed O(f log f) with zero
   allocation. *)
let sort_prefix a len =
  if len > 1 then begin
    let sift root stop =
      let r = ref root in
      let continue = ref true in
      while !continue do
        let child = (2 * !r) + 1 in
        if child >= stop then continue := false
        else begin
          let c = if child + 1 < stop && a.(child + 1) > a.(child) then child + 1 else child in
          if a.(c) > a.(!r) then begin
            let tmp = a.(c) in
            a.(c) <- a.(!r);
            a.(!r) <- tmp;
            r := c
          end
          else continue := false
        end
      done
    in
    for root = (len / 2) - 1 downto 0 do
      sift root len
    done;
    for stop = len - 1 downto 1 do
      let tmp = a.(0) in
      a.(0) <- a.(stop);
      a.(stop) <- tmp;
      sift 0 stop
    done
  end

let exec_unguarded ?max_rounds ?max_words ?(sink = Sink.null) ?(degrade = false)
    ?churn ?(guard = false) ?corrupt e algo =
  let n = e.n in
  let g = e.g in
  (match churn with
  | Some (c : Churn.t) ->
    if Array.length c.Churn.crashed <> max 1 n
       || Array.length c.Churn.edge_down <> max 1 e.ports
    then invalid_arg "Engine.exec: churn compiled against a different engine";
    Churn.reset c
  | None -> ());
  (match corrupt with
  | Some (cs : Corrupt.spec) ->
    Corrupt.validate cs;
    cs.Corrupt.tally.Corrupt.injected <- 0;
    cs.Corrupt.tally.Corrupt.detected <- 0;
    cs.Corrupt.tally.Corrupt.truncated <- 0
  | None -> ());
  (* corruption is only detectable with the guard word on every frame *)
  let guard = guard || corrupt <> None in
  let max_rounds =
    match max_rounds with Some r -> r | None -> default_max_rounds n
  in
  let max_words =
    match max_words with Some w -> w | None -> default_max_words n
  in
  if e.dirty then begin
    (* a previous run aborted mid-round (violation / limit); scrub *)
    reset_buf e.buf_a;
    reset_buf e.buf_b
  end;
  let stride = stride_for ~guard ~max_words () in
  ensure_arena e.buf_a ~ports:e.ports ~stride;
  ensure_arena e.buf_b ~ports:e.ports ~stride;
  e.running <- true;
  e.dirty <- true;
  let a_init, a_halted, a_wake =
    match algo with
    | A_list a -> (a.init, a.halted, a.wake)
    | A_emit a -> (a.einit, a.ehalted, a.ewake)
  in
  let states = Array.init n (fun v -> a_init g v) in
  (* Hoisted churn views: the empty arrays are never indexed (short-circuit
     on [churn_on]), so the no-churn send path costs one extra branch. *)
  let churn_edge_down, churn_crashed, churn_dormant =
    match churn with
    | Some (c : Churn.t) ->
      (c.Churn.edge_down, c.Churn.crashed, c.Churn.dormant)
    | None -> ([||], [||], [||])
  in
  let churn_on = churn <> None in
  let live = e.live and is_live = e.is_live in
  let live_len = ref 0 in
  for v = 0 to n - 1 do
    if a_halted states.(v) || (churn_on && churn_dormant.(v)) then
      is_live.(v) <- false
    else begin
      is_live.(v) <- true;
      live.(!live_len) <- v;
      incr live_len
    end
  done;
  (* Frontier state.  Every node starts in Always mode: hints are consulted
     only after a step, and round 0 (the init round) steps every live node
     regardless.  [hinted] stays false — and the engine stays on the dense
     legacy path, byte-for-byte — until some step returns a non-Always
     hint. *)
  Array.fill e.fstamp 0 (max 1 n) (-1);
  Array.fill e.wake_at 0 (max 1 n) (-1);
  for v = 0 to n - 1 do
    e.is_always.(v) <- is_live.(v)
  done;
  Array.fill e.buckets 0 (Array.length e.buckets) [];
  let alen = ref 0 in
  let hinted = ref false in
  let transition = ref false in
  let always_dirty = ref false in
  let always_unsorted = ref false in
  let schedule v k =
    e.wake_at.(v) <- k;
    let len = Array.length e.buckets in
    if k >= len then begin
      let b = Array.make (max (k + 1) (2 * len)) [] in
      Array.blit e.buckets 0 b 0 len;
      e.buckets <- b
    end;
    e.buckets.(k) <- v :: e.buckets.(k)
  in
  let apply_wake v st r =
    match a_wake st with
    | Always ->
      if not e.is_always.(v) then begin
        e.is_always.(v) <- true;
        e.always.(!alen) <- v;
        incr alen;
        always_unsorted := true
      end;
      e.wake_at.(v) <- -1
    | hint ->
      if not !hinted then begin
        hinted := true;
        transition := true
      end;
      if e.is_always.(v) then begin
        e.is_always.(v) <- false;
        always_dirty := true
      end;
      (match hint with
      | Next -> schedule v (r + 1)
      | At k -> if k > r then schedule v k else e.wake_at.(v) <- -1
      | OnMessage -> e.wake_at.(v) <- -1
      | Always -> assert false)
  in
  let cur = ref e.buf_a and nxt = ref e.buf_b in
  let messages = ref 0 and max_inflight = ref 0 and round = ref 0 in
  let instrumented = sink != Sink.null in
  (* Hoisted out of the round loop so the emitter closures (created once
     per exec) can account churn-dropped frames; reset every round. *)
  let churn_dropped = ref 0 in
  (* The emit fast path: one reusable emitter whose start/commit write the
     frame straight into the send arena.  [start] performs the same checks
     as the list path's store loop (non-neighbor, then churn-dead, then
     duplicate edge); width is enforced by the writer budget as the frame
     is built; [commit] publishes the slot and bumps the counters. *)
  let em = Emit.make () in
  (if match algo with A_emit _ -> true | A_list _ -> false then begin
     em.Emit.estart <-
       (fun t u ->
         if t.Emit.eopen then
           invalid_arg "Engine.Emit.start: frame already open";
         let v = t.Emit.enode in
         let slot = find_port e ~src:v ~dst:u in
         if slot < 0 then
           raise
             (Congestion_violation
                (Printf.sprintf "round %d: node %d sent to non-neighbor %d"
                   !round v u));
         let sd = !nxt in
         if
           churn_on
           && (churn_edge_down.(slot) || churn_crashed.(u)
              || churn_dormant.(u))
         then
           (* frame onto a dead port or to a crashed node: build it (the
              width budget still applies) but never publish the slot *)
           t.Emit.edead <- true
         else begin
           if sd.wire.(slot) >= 0 then
             raise
               (Congestion_violation
                  (Printf.sprintf "round %d: node %d sent twice over edge to %d"
                     !round v u));
           t.Emit.edead <- false
         end;
         t.Emit.edst <- u;
         t.Emit.eslot <- slot;
         t.Emit.eopen <- true;
         Codec.attach_writer ~guard t.Emit.ew sd.data ~base:(slot * stride)
           ~budget:max_words;
         t.Emit.ew);
     em.Emit.ecommit <-
       (fun t ->
         if not t.Emit.eopen then
           invalid_arg "Engine.Emit.commit: no open frame";
         t.Emit.eopen <- false;
         if t.Emit.edead then incr churn_dropped
         else begin
           let sd = !nxt in
           let slot = t.Emit.eslot and u = t.Emit.edst in
           let w = Codec.words t.Emit.ew and wire = Codec.seal t.Emit.ew in
           sd.wire.(slot) <- wire;
           sd.wlog.(slot) <- w;
           sd.written.(sd.wlen) <- slot;
           sd.wlen <- sd.wlen + 1;
           if sd.count.(u) = 0 then begin
             sd.active.(sd.alen) <- u;
             sd.alen <- sd.alen + 1
           end;
           sd.count.(u) <- sd.count.(u) + 1;
           sd.total <- sd.total + 1;
           sd.words <- sd.words + w;
           sd.bits <- sd.bits + (word_bits * wire);
           if instrumented then
             sink.on_message ~round:!round ~src:t.Emit.enode ~dst:u ~words:w
         end);
     (* Broadcast fast path: encode the one-word frame once into a scratch
        region, then walk the node's contiguous out-port segment directly —
        no per-neighbor binary search, no per-frame start/commit pair.
        Totals are batched after the churn-free loop; the churn loop keeps
        per-slot accounting because dropped ports send nothing. *)
     let bscratch =
       Bytes.create (2 * (Codec.max_wire_words + Codec.guard_words))
     in
     (* Broadcast memo: consecutive [broadcast1] calls with the same value
        re-use the encoded scratch frame, so a flood round encodes (and
        CRCs, when the guard is on) once instead of n times.  Nothing else
        writes [bscratch], so the memo never goes stale. *)
     let bmemo_live = ref false and bmemo_a = ref 0 and bmemo_wire = ref 0 in
     em.Emit.ebroadcast1 <-
       (fun t a ->
         if t.Emit.eopen then
           invalid_arg "Engine.Emit.broadcast1: frame already open";
         let v = t.Emit.enode in
         if max_words < 1 then
           raise
             (Congestion_violation
                (Printf.sprintf
                   "round %d: node %d payload of %d words exceeds %d" !round v
                   1 max_words));
         let wire =
           if !bmemo_live && !bmemo_a = a then !bmemo_wire
           else begin
             let w =
               if guard then Codec.encode1_guarded bscratch ~base:0 a
               else Codec.encode1 bscratch ~base:0 a
             in
             bmemo_live := true;
             bmemo_a := a;
             bmemo_wire := w;
             w
           end
         in
         let sd = !nxt in
         let first = e.out_off.(v) and stop = e.out_off.(v + 1) in
         if not churn_on then begin
           (* arrays hoisted into locals: without flambda every
              [sd.field.(slot)] reloads the field inside the loop *)
           let data = sd.data
           and swire = sd.wire
           and swlog = sd.wlog
           and written = sd.written
           and count = sd.count
           and active = sd.active
           and out_dst = e.out_dst in
           (* every slot of the range is written, so the [written] cursor
              is [wbase + slot] — no loop-carried ref (a ref would be a
              per-step allocation on the zero-alloc path) *)
           let wbase = sd.wlen - first in
           if wire = 1 && not instrumented then begin
             (* the lean loop: a small value on an uninstrumented run is
                one u16 store plus the minimum bookkeeping *)
             let g = Bytes.get_uint16_le bscratch 0 in
             for slot = first to stop - 1 do
               let u = out_dst.(slot) in
               if swire.(slot) >= 0 then
                 raise
                   (Congestion_violation
                      (Printf.sprintf
                         "round %d: node %d sent twice over edge to %d" !round
                         v u));
               Bytes.set_uint16_le data (slot * stride) g;
               swire.(slot) <- 1;
               swlog.(slot) <- 1;
               written.(wbase + slot) <- slot;
               let c = count.(u) in
               if c = 0 then begin
                 active.(sd.alen) <- u;
                 sd.alen <- sd.alen + 1
               end;
               count.(u) <- c + 1
             done
           end
           else if wire = 2 && not instrumented then begin
             (* guarded lean loop: a one-word value plus its CRC guard
                word is exactly one 32-bit store — the stride is always
                at least [2 * max_wire_words] bytes, so the wide store
                stays inside the slot's frame region *)
             let g = Bytes.get_int32_le bscratch 0 in
             for slot = first to stop - 1 do
               let u = out_dst.(slot) in
               if swire.(slot) >= 0 then
                 raise
                   (Congestion_violation
                      (Printf.sprintf
                         "round %d: node %d sent twice over edge to %d" !round
                         v u));
               Bytes.set_int32_le data (slot * stride) g;
               swire.(slot) <- 2;
               swlog.(slot) <- 1;
               written.(wbase + slot) <- slot;
               let c = count.(u) in
               if c = 0 then begin
                 active.(sd.alen) <- u;
                 sd.alen <- sd.alen + 1
               end;
               count.(u) <- c + 1
             done
           end
           else
             for slot = first to stop - 1 do
               let u = out_dst.(slot) in
               if swire.(slot) >= 0 then
                 raise
                   (Congestion_violation
                      (Printf.sprintf
                         "round %d: node %d sent twice over edge to %d" !round
                         v u));
               if wire = 1 then
                 Bytes.set_uint16_le data (slot * stride)
                   (Bytes.get_uint16_le bscratch 0)
               else Bytes.blit bscratch 0 data (slot * stride) (2 * wire);
               swire.(slot) <- wire;
               swlog.(slot) <- 1;
               written.(wbase + slot) <- slot;
               let c = count.(u) in
               if c = 0 then begin
                 active.(sd.alen) <- u;
                 sd.alen <- sd.alen + 1
               end;
               count.(u) <- c + 1;
               if instrumented then
                 sink.on_message ~round:!round ~src:v ~dst:u ~words:1
             done;
           let sent = stop - first in
           sd.wlen <- sd.wlen + sent;
           sd.total <- sd.total + sent;
           sd.words <- sd.words + sent;
           sd.bits <- sd.bits + (word_bits * wire * sent)
         end
         else
           for slot = first to stop - 1 do
             let u = e.out_dst.(slot) in
             if
               churn_edge_down.(slot) || churn_crashed.(u)
               || churn_dormant.(u)
             then incr churn_dropped
             else begin
               if sd.wire.(slot) >= 0 then
                 raise
                   (Congestion_violation
                      (Printf.sprintf
                         "round %d: node %d sent twice over edge to %d" !round
                         v u));
               Bytes.blit bscratch 0 sd.data (slot * stride) (2 * wire);
               sd.wire.(slot) <- wire;
               sd.wlog.(slot) <- 1;
               sd.written.(sd.wlen) <- slot;
               sd.wlen <- sd.wlen + 1;
               if sd.count.(u) = 0 then begin
                 sd.active.(sd.alen) <- u;
                 sd.alen <- sd.alen + 1
               end;
               sd.count.(u) <- sd.count.(u) + 1;
               sd.total <- sd.total + 1;
               sd.words <- sd.words + 1;
               sd.bits <- sd.bits + (word_bits * wire);
               if instrumented then
                 sink.on_message ~round:!round ~src:v ~dst:u ~words:1
             end
           done)
   end);
  (* The deferred in-port scan behind [Inbox.ensure]: forward order is
     sender-ascending, preserving the inbox ordering guarantee.  [!cur]
     is the delivery side for the round being stepped. *)
  e.ib.Inbox.filler <-
    (fun ib ->
      let v = ib.Inbox.fill_node in
      ib.Inbox.fill_node <- -1;
      let dv = !cur in
      if dv.count.(v) > 0 then
        for j = e.in_off.(v) to e.in_off.(v + 1) - 1 do
          let slot = e.in_slot.(j) in
          if dv.wire.(slot) >= 0 then begin
            ib.Inbox.src.(ib.Inbox.len) <- e.in_src.(j);
            ib.Inbox.slot.(ib.Inbox.len) <- slot;
            ib.Inbox.len <- ib.Inbox.len + 1
          end
        done);
  while !live_len > 0 || (!nxt).total > 0 do
    if !round > max_rounds then raise (Round_limit_exceeded !round);
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp;
    let dv = !cur and sd = !nxt in
    Inbox.attach e.ib ~data:dv.data ~wire:dv.wire ~wlog:dv.wlog ~stride;
    let r = !round in
    (* Apply the churn events due this round before anything is delivered:
       a node crashing at round r does not execute round r and the frames
       already in flight to it (sent at r-1) are lost; an edge going down
       at round r loses the frame it was carrying.  Frames a node sent
       before its crash are still delivered — the crash kills the
       processor, not the wires. *)
    churn_dropped := 0;
    let newly_crashed = ref 0 in
    let newly_arrived = ref 0 in
    let newly_departed = ref 0 in
    let newly_inserted = ref 0 in
    let crashed_live = ref 0 in
    let churn_killed = ref false in
    let live_unsorted = ref false in
    (match churn with
    | Some c ->
      let len = Array.length c.Churn.ops in
      let kill v =
        if dv.count.(v) > 0 then begin
          for j = e.in_off.(v) to e.in_off.(v + 1) - 1 do
            let slot = e.in_slot.(j) in
            let wv = dv.wire.(slot) in
            if wv >= 0 then begin
              dv.wire.(slot) <- -1;
              dv.total <- dv.total - 1;
              dv.words <- dv.words - dv.wlog.(slot);
              dv.bits <- dv.bits - (word_bits * wv);
              incr churn_dropped
            end
          done;
          dv.count.(v) <- 0
        end;
        if is_live.(v) then begin
          is_live.(v) <- false;
          incr crashed_live;
          churn_killed := true;
          if e.is_always.(v) then begin
            e.is_always.(v) <- false;
            always_dirty := true
          end;
          e.wake_at.(v) <- -1
        end
      in
      while
        c.Churn.cursor < len
        && Churn.round_of c.Churn.events.(c.Churn.cursor) <= r
      do
        (match c.Churn.ops.(c.Churn.cursor) with
        | Churn.Op_crash v ->
          if not c.Churn.crashed.(v) then begin
            c.Churn.crashed.(v) <- true;
            incr newly_crashed;
            kill v
          end
        | Churn.Op_depart v ->
          (* a graceful departure is mechanically a fail-stop — the node
             leaves without ceremony — but accounted separately *)
          if not c.Churn.crashed.(v) then begin
            c.Churn.crashed.(v) <- true;
            incr newly_departed;
            kill v
          end
        | Churn.Op_arrive v ->
          if c.Churn.dormant.(v) then begin
            c.Churn.dormant.(v) <- false;
            incr newly_arrived;
            if (not c.Churn.crashed.(v)) && not (a_halted states.(v))
            then begin
              is_live.(v) <- true;
              live.(!live_len) <- v;
              incr live_len;
              live_unsorted := true;
              (* the arrival round steps the node unconditionally, like the
                 init round steps every live node: it enters Always mode
                 until its own first hint says otherwise *)
              e.is_always.(v) <- true;
              if !hinted then begin
                e.always.(!alen) <- v;
                incr alen;
                always_unsorted := true
              end
            end
          end
        | Churn.Op_down slot ->
          if not c.Churn.edge_down.(slot) then begin
            c.Churn.edge_down.(slot) <- true;
            let wv = dv.wire.(slot) in
            if wv >= 0 then begin
              dv.wire.(slot) <- -1;
              dv.total <- dv.total - 1;
              dv.words <- dv.words - dv.wlog.(slot);
              dv.bits <- dv.bits - (word_bits * wv);
              dv.count.(e.out_dst.(slot)) <- dv.count.(e.out_dst.(slot)) - 1;
              incr churn_dropped
            end
          end
        | Churn.Op_add slot ->
          (* reserved capacity coming online: the slot was pre-downed at
             reset, nothing can be in flight through it *)
          if c.Churn.edge_down.(slot) then begin
            c.Churn.edge_down.(slot) <- false;
            incr newly_inserted
          end
        | Churn.Op_up slot -> c.Churn.edge_down.(slot) <- false);
        c.Churn.cursor <- c.Churn.cursor + 1
      done;
      if !live_unsorted then sort_prefix live !live_len
    | None -> ());
    (* Deterministic wire corruption: a serial pass over the delivery-side
       written stack, after churn (a frame churn killed cannot also be
       corrupted) and before the halted-receiver minimum (a corrupted
       frame to a halted node is dropped, never delivered).  Every
       decision is a pure (cseed, round, slot, lane) hash, so the pass is
       iteration-order-free. *)
    let corrupt_dropped = ref 0 in
    (match corrupt with
    | Some (cs : Corrupt.spec) ->
      let inten = Corrupt.intensity cs ~round:r in
      let fthr = Corrupt.threshold (cs.Corrupt.flip *. inten) in
      let tthr = Corrupt.threshold (cs.Corrupt.truncate *. inten) in
      if fthr > 0 || tthr > 0 then begin
        let cseed = cs.Corrupt.cseed and burst = cs.Corrupt.burst in
        let tally = cs.Corrupt.tally in
        for j = 0 to dv.wlen - 1 do
          let slot = dv.written.(j) in
          let wv = dv.wire.(slot) in
          if wv >= 0 then begin
            let kill () =
              dv.wire.(slot) <- -1;
              dv.total <- dv.total - 1;
              dv.words <- dv.words - dv.wlog.(slot);
              dv.bits <- dv.bits - (word_bits * wv);
              dv.count.(e.out_dst.(slot)) <- dv.count.(e.out_dst.(slot)) - 1;
              incr corrupt_dropped
            in
            let h0 = Corrupt.decide ~cseed ~round:r ~slot ~lane:0 in
            if tthr > 0 && Corrupt.hit h0 tthr && wv > 1 then begin
              (* truncation shortens the frame below what its logical
                 words need: the decoder would raise Truncated_frame, so
                 it is always detected — drop at the recv path *)
              tally.Corrupt.injected <- tally.Corrupt.injected + 1;
              tally.Corrupt.truncated <- tally.Corrupt.truncated + 1;
              kill ()
            end
            else if fthr > 0 then begin
              let base = slot * stride in
              let hitany = ref false in
              for i = 0 to wv - 1 do
                let h = Corrupt.decide ~cseed ~round:r ~slot ~lane:(i + 1) in
                if Corrupt.hit h fthr then begin
                  hitany := true;
                  let stop = min (i + burst - 1) (wv - 1) in
                  for jj = i to stop do
                    let hm =
                      if jj = i then h
                      else
                        Corrupt.decide ~cseed ~round:r ~slot
                          ~lane:(wv + 1 + jj)
                    in
                    let off = base + (2 * jj) in
                    Bytes.set_uint16_le dv.data off
                      (Bytes.get_uint16_le dv.data off lxor Corrupt.mask hm)
                  done
                end
              done;
              if !hitany then begin
                tally.Corrupt.injected <- tally.Corrupt.injected + 1;
                let clean =
                  Codec.verify dv.data ~base ~wire:wv
                  && Codec.well_formed dv.data ~base
                       ~wire:(wv - Codec.guard_words) ~words:dv.wlog.(slot)
                in
                if not clean then begin
                  tally.Corrupt.detected <- tally.Corrupt.detected + 1;
                  kill ()
                end
              end
            end
          end
        done
      end
    | None -> ());
    let this_round = dv.total in
    max_inflight := max !max_inflight this_round;
    messages := !messages + this_round;
    let live_snapshot = !live_len - !crashed_live in
    (* The reference semantics raise at the first offending node in id
       order; a halted receiver competes with live-node send violations.
       [v_min] is the smallest halted node holding undeliverable mail. *)
    let v_min = ref (-1) in
    for i = 0 to dv.alen - 1 do
      let v = dv.active.(i) in
      if (not is_live.(v)) && dv.count.(v) > 0 && (!v_min < 0 || v < !v_min) then
        v_min := v
    done;
    let compacted = ref !churn_killed in
    let step_node v =
      if !v_min >= 0 && !v_min < v then
        raise
          (Congestion_violation
             (Printf.sprintf "round %d: halted node %d received a message" r !v_min));
      (* mark the inbox for a lazy fill: the in-port scan runs only if
         the kernel touches its mail this step *)
      let ib = e.ib in
      ib.Inbox.len <- 0;
      ib.Inbox.fill_node <- v;
      let st =
        match algo with
        | A_list a ->
          let st, outbox = a.step g ~round:r ~node:v states.(v) ib in
          List.iter
            (fun (u, p) ->
              let slot = find_port e ~src:v ~dst:u in
              if slot < 0 then
                raise
                  (Congestion_violation
                     (Printf.sprintf "round %d: node %d sent to non-neighbor %d" r v u));
              if
                churn_on
                && (churn_edge_down.(slot) || churn_crashed.(u)
                   || churn_dormant.(u))
              then begin
                (* frame onto a dead port or to a crashed node: silently lost
                   (and counted).  The width check still applies — churn must
                   not mask an algorithm exceeding its budget — but the
                   duplicate-slot check cannot (nothing occupies the slot). *)
                let w = Array.length p in
                if w > max_words then
                  raise
                    (Congestion_violation
                       (Printf.sprintf "round %d: node %d payload of %d words exceeds %d"
                          r v w max_words));
                incr churn_dropped
              end
              else begin
              if sd.wire.(slot) >= 0 then
                raise
                  (Congestion_violation
                     (Printf.sprintf "round %d: node %d sent twice over edge to %d" r v u));
              let w = Array.length p in
              if w > max_words then
                raise
                  (Congestion_violation
                     (Printf.sprintf "round %d: node %d payload of %d words exceeds %d"
                        r v w max_words));
              let wire =
                if guard then Codec.encode_guarded sd.data ~base:(slot * stride) p
                else Codec.encode sd.data ~base:(slot * stride) p
              in
              sd.wire.(slot) <- wire;
              sd.wlog.(slot) <- w;
              sd.written.(sd.wlen) <- slot;
              sd.wlen <- sd.wlen + 1;
              if sd.count.(u) = 0 then begin
                sd.active.(sd.alen) <- u;
                sd.alen <- sd.alen + 1
              end;
              sd.count.(u) <- sd.count.(u) + 1;
              sd.total <- sd.total + 1;
              sd.words <- sd.words + w;
              sd.bits <- sd.bits + (word_bits * wire);
              if instrumented then sink.on_message ~round:r ~src:v ~dst:u ~words:w
              end)
            outbox;
          st
        | A_emit a ->
          em.Emit.enode <- v;
          let st =
            try a.estep g ~round:r ~node:v states.(v) ib em
            with Codec.Width_exceeded { budget; words } ->
              raise
                (Congestion_violation
                   (Printf.sprintf "round %d: node %d payload of %d words exceeds %d"
                      r v words budget))
          in
          if em.Emit.eopen then
            invalid_arg "Engine.Emit: frame left open at end of step";
          st
      in
      states.(v) <- st;
      if a_halted st then begin
        is_live.(v) <- false;
        compacted := true;
        if e.is_always.(v) then begin
          e.is_always.(v) <- false;
          always_dirty := true
        end;
        e.wake_at.(v) <- -1
      end
      else if not degrade then apply_wake v st r
    in
    let stepped = ref 0 in
    let woken = ref 0 in
    if not !hinted then begin
      (* dense path: every live node steps, exactly the legacy schedule
         (the guard only skips nodes churn crashed before compaction) *)
      stepped := live_snapshot;
      for i = 0 to !live_len - 1 do
        let v = live.(i) in
        if is_live.(v) then step_node v
      done
    end
    else begin
      (* sparse path: frontier = valid timer wake-ups + receivers + the
         Always set, stepped in ascending node id *)
      let plen = ref 0 in
      let push v =
        if e.fstamp.(v) <> r then begin
          e.fstamp.(v) <- r;
          e.frontier.(!plen) <- v;
          incr plen
        end
      in
      if r < Array.length e.buckets then begin
        let fired = e.buckets.(r) in
        e.buckets.(r) <- [];
        List.iter
          (fun v ->
            (* lazy invalidation: a rescheduled or cancelled wake leaves a
               stale entry behind; only the latest hint counts *)
            if e.wake_at.(v) = r then begin
              e.wake_at.(v) <- -1;
              if is_live.(v) then begin
                incr woken;
                push v
              end
            end)
          fired
      end;
      for i = 0 to dv.alen - 1 do
        let v = dv.active.(i) in
        (* the count guard matters only under churn: a receiver whose whole
           inbox was churned away is not woken *)
        if is_live.(v) && dv.count.(v) > 0 then push v
      done;
      for i = 0 to !alen - 1 do
        push e.always.(i)
      done;
      sort_prefix e.frontier !plen;
      stepped := !plen;
      for i = 0 to !plen - 1 do
        step_node e.frontier.(i)
      done
    end;
    if !v_min >= 0 then
      raise
        (Congestion_violation
           (Printf.sprintf "round %d: halted node %d received a message" r !v_min));
    let receivers =
      (* an active entry whose inbox was entirely churned or corrupted
         away received nothing; without drops every entry keeps its count *)
      if !churn_dropped = 0 && !corrupt_dropped = 0 then dv.alen
      else begin
        let c = ref 0 in
        for i = 0 to dv.alen - 1 do
          if dv.count.(dv.active.(i)) > 0 then incr c
        done;
        !c
      end
    and delivered_words = dv.words
    and delivered_bits = dv.bits in
    for j = 0 to dv.wlen - 1 do
      dv.wire.(dv.written.(j)) <- -1
    done;
    for i = 0 to dv.alen - 1 do
      dv.count.(dv.active.(i)) <- 0
    done;
    dv.wlen <- 0;
    dv.alen <- 0;
    dv.total <- 0;
    dv.words <- 0;
    dv.bits <- 0;
    if !compacted then begin
      (* stable compaction keeps the live list ascending *)
      let w = ref 0 in
      for i = 0 to !live_len - 1 do
        let v = live.(i) in
        if is_live.(v) then begin
          live.(!w) <- v;
          incr w
        end
      done;
      live_len := !w
    end;
    if !transition then begin
      (* first non-Always hint this run: seed the Always set from the live
         list (ascending, so it starts sorted) *)
      transition := false;
      alen := 0;
      for i = 0 to !live_len - 1 do
        let v = live.(i) in
        if e.is_always.(v) then begin
          e.always.(!alen) <- v;
          incr alen
        end
      done;
      always_dirty := false;
      always_unsorted := false
    end
    else if !always_dirty || !always_unsorted then begin
      let w = ref 0 in
      for i = 0 to !alen - 1 do
        let v = e.always.(i) in
        if is_live.(v) && e.is_always.(v) then begin
          e.always.(!w) <- v;
          incr w
        end
      done;
      alen := !w;
      if !always_unsorted then sort_prefix e.always !alen;
      always_dirty := false;
      always_unsorted := false
    end;
    if instrumented then
      sink.on_round
        {
          round = r;
          delivered = this_round;
          delivered_words;
          delivered_bits;
          receivers;
          stepped = !stepped;
          skipped = live_snapshot - !stepped;
          woken = !woken;
          sent = sd.total;
          dropped = !churn_dropped;
          duplicated = 0;
          retransmits = 0;
          corrupted = !corrupt_dropped;
          crashed = !newly_crashed;
          arrived = !newly_arrived;
          departed = !newly_departed;
          inserted = !newly_inserted;
        };
    incr round
  done;
  e.running <- false;
  e.dirty <- false;
  if instrumented then sink.on_finish ();
  (states, { rounds = !round; messages = !messages; max_inflight = !max_inflight })

(* ------------------------------------------------------------------ *)
(* Sharded execution: the same semantics as [exec_unguarded], bit for bit,
   but with the node set partitioned into [d] shards stepped on [d] OCaml 5
   domains.  The round structure is

     serial: buffer swap, churn application, halted-receiver minimum
     parallel phase A: each shard steps its own frontier in ascending node
       id; intra-shard frames land directly in the send buffer, cross-shard
       frames are appended to a fixed per-(src-shard, dst-shard) arena
     serial: violation resolution, deferred sink dispatch, round record
     parallel phase B: each destination shard drains the cross arenas
       addressed to it in src-shard order

   Determinism does not depend on scheduling: every mutable cell is owned
   by exactly one shard within a phase (slots and counts are owned by the
   destination, send stamps by the source, node state by the owner), the
   arenas are filled in each source's deterministic stepping order and
   drained in fixed src-shard order, and the buffers are slot-indexed so
   final contents are independent of drain interleaving.  Sink callbacks
   are deferred to the barrier and replayed in ascending source id — the
   sequential emission order — so instrumented runs are also identical.

   Violations cannot abort mid-phase without racing the other shards, so
   each shard records its first violation (the node it fired at, plus a
   priority bit ordering the halted-receiver check before the send checks
   at the same node) and stops stepping; the barrier re-raises the
   lexicographically smallest one — exactly the violation the sequential
   sweep would have hit first. *)

exception Stop_shard

(* Per-shard bookkeeping for one direction of the double buffer.  The
   payload slots and per-node counts live in arrays shared across shards
   (every entry has a unique owning shard); the written / active stacks are
   private so clearing stays shard-local. *)
type sbuf = {
  s_written : int array;  (* in-slots of this shard written this round *)
  mutable s_wlen : int;
  s_active : int array;   (* owned receivers with count > 0 *)
  mutable s_alen : int;
  mutable s_total : int;
  mutable s_words : int;
  mutable s_bits : int;
}

(* Cross-shard frame list for one (src shard, dst shard) pair: appended by
   the source in stepping order during phase A, drained and reset by the
   destination during phase B.  The phases are barrier-separated, so the
   two owners never touch it concurrently.

   With the packed arena the frame *data* no longer travels through here:
   every directed slot has a unique sender, so the source encodes the
   frame straight into the shared send arena (bytes, wire and word counts
   are all slot-indexed cells only that source writes this round) and the
   destination merely learns *which* slots arrived — the per-frame boxed
   copy of the old exchange, and the flat blit that was to replace it,
   both optimize away to an int push. *)
type xarena = {
  mutable x_slot : int array;
  mutable x_len : int;
}

type shard = {
  sh_nodes : int array;  (* owned nodes, ascending *)
  sh_live : int array;
  mutable sh_live_len : int;
  sh_frontier : int array;
  sh_always : int array;
  mutable sh_alen : int;
  mutable sh_buckets : int list array;
  sh_ib : Inbox.t;
  sh_a : sbuf;
  sh_b : sbuf;
  (* per-round outputs (phase A) *)
  mutable sh_stepped : int;
  mutable sh_woken : int;
  mutable sh_receivers : int;
  mutable sh_delivered_words : int;
  mutable sh_delivered_bits : int;
  mutable sh_emitted : int;
  mutable sh_send_dropped : int;
  mutable sh_hinted : bool;
  mutable sh_vmin : int;  (* halted-receiver candidate for the next round *)
  (* control flags written serially / by the owner *)
  mutable sh_crashed_live : int;
  mutable sh_compact : bool;
  mutable sh_hit : bool;  (* an in-flight frame to this shard was churned *)
  mutable sh_always_dirty : bool;
  mutable sh_always_unsorted : bool;
  (* first violation: node, priority (0 halted < 1 send), exception *)
  mutable sh_vnode : int;
  mutable sh_vprio : int;
  mutable sh_vexn : exn option;
  (* deferred on_message events, (src, dst, words), src-ascending *)
  mutable sh_ev_src : int array;
  mutable sh_ev_dst : int array;
  mutable sh_ev_w : int array;
  mutable sh_ev_len : int;
  sh_em : Emit.t; (* per-shard emitter for the emit fast path *)
}

let contiguous_partition ~n ~shards =
  let shard_of = Array.make (max 1 n) 0 in
  for s = 0 to shards - 1 do
    for v = s * n / shards to ((s + 1) * n / shards) - 1 do
      shard_of.(v) <- s
    done
  done;
  shard_of

let exec_sharded ?max_rounds ?max_words ?(sink = Sink.null) ?(degrade = false)
    ?churn ?(guard = false) ?corrupt ~domains ?partition e algo =
  let n = e.n in
  let g = e.g in
  (match churn with
  | Some (c : Churn.t) ->
    if Array.length c.Churn.crashed <> max 1 n
       || Array.length c.Churn.edge_down <> max 1 e.ports
    then invalid_arg "Engine.exec: churn compiled against a different engine";
    Churn.reset c
  | None -> ());
  (match corrupt with
  | Some (cs : Corrupt.spec) ->
    Corrupt.validate cs;
    cs.Corrupt.tally.Corrupt.injected <- 0;
    cs.Corrupt.tally.Corrupt.detected <- 0;
    cs.Corrupt.tally.Corrupt.truncated <- 0
  | None -> ());
  let guard = guard || corrupt <> None in
  let max_rounds =
    match max_rounds with Some r -> r | None -> default_max_rounds n
  in
  let max_words =
    match max_words with Some w -> w | None -> default_max_words n
  in
  let d = max 1 (min domains (max 1 n)) in
  let shard_of =
    match partition with
    | None -> contiguous_partition ~n ~shards:d
    | Some p ->
      if Array.length p <> n then
        invalid_arg "Engine.exec: partition length differs from node count";
      Array.iter
        (fun s ->
          if s < 0 || s >= d then
            invalid_arg "Engine.exec: partition shard id out of range")
        p;
      p
  in
  e.running <- true;
  let a_init, a_halted, a_wake =
    match algo with
    | A_list a -> (a.init, a.halted, a.wake)
    | A_emit a -> (a.einit, a.ehalted, a.ewake)
  in
  let states = Array.init n (fun v -> a_init g v) in
  (* shared per-node / per-port arrays; each entry has one owning shard *)
  let is_live = Array.make (max 1 n) false in
  let is_always = Array.make (max 1 n) false in
  let wake_at = Array.make (max 1 n) (-1) in
  let fstamp = Array.make (max 1 n) (-1) in
  let sent_stamp = Array.make (max 1 e.ports) (-1) in
  (* Packed frame arenas, one per buffer direction.  Every slot-indexed
     cell (bytes region, wire count, word count) is written by exactly one
     shard per phase — the slot's unique sender during phase A, nobody
     afterwards — and read only after the phase barrier, so the shards
     never race on them. *)
  let stride = stride_for ~guard ~max_words () in
  let data_a = Bytes.create (max 2 (e.ports * stride)) in
  let data_b = Bytes.create (max 2 (e.ports * stride)) in
  let wire_a = Array.make (max 1 e.ports) (-1) in
  let wire_b = Array.make (max 1 e.ports) (-1) in
  let wlog_a = Array.make (max 1 e.ports) 0 in
  let wlog_b = Array.make (max 1 e.ports) 0 in
  let count_a = Array.make (max 1 n) 0 in
  let count_b = Array.make (max 1 n) 0 in
  (* build shards: sizes, in-port write capacities, max in-degrees *)
  let sizes = Array.make d 0 in
  let inports = Array.make d 0 in
  let max_indeg = Array.make d 0 in
  for v = 0 to n - 1 do
    let s = shard_of.(v) in
    sizes.(s) <- sizes.(s) + 1;
    let indeg = e.in_off.(v + 1) - e.in_off.(v) in
    inports.(s) <- inports.(s) + indeg;
    if indeg > max_indeg.(s) then max_indeg.(s) <- indeg
  done;
  let shards =
    Array.init d (fun s ->
        let cap = max 1 sizes.(s) in
        (* every slot written for this shard delivers to one of its nodes,
           so the written-stack capacity is its in-port count *)
        let wcap = max 1 inports.(s) in
        let mk_sbuf () =
          {
            s_written = Array.make wcap 0;
            s_wlen = 0;
            s_active = Array.make cap 0;
            s_alen = 0;
            s_total = 0;
            s_words = 0;
            s_bits = 0;
          }
        in
        {
          sh_nodes = Array.make cap 0;
          sh_live = Array.make cap 0;
          sh_live_len = 0;
          sh_frontier = Array.make cap 0;
          sh_always = Array.make cap 0;
          sh_alen = 0;
          sh_buckets = Array.make 16 [];
          sh_ib = Inbox.create ~cap:(max 1 max_indeg.(s)) ();
          sh_a = mk_sbuf ();
          sh_b = mk_sbuf ();
          sh_stepped = 0;
          sh_woken = 0;
          sh_receivers = 0;
          sh_delivered_words = 0;
          sh_delivered_bits = 0;
          sh_emitted = 0;
          sh_send_dropped = 0;
          sh_hinted = false;
          sh_vmin = -1;
          sh_crashed_live = 0;
          sh_compact = false;
          sh_hit = false;
          sh_always_dirty = false;
          sh_always_unsorted = false;
          sh_vnode = -1;
          sh_vprio = 0;
          sh_vexn = None;
          sh_ev_src = [||];
          sh_ev_dst = [||];
          sh_ev_w = [||];
          sh_ev_len = 0;
          sh_em = Emit.make ();
        })
  in
  let fill = Array.make d 0 in
  for v = 0 to n - 1 do
    let s = shard_of.(v) in
    shards.(s).sh_nodes.(fill.(s)) <- v;
    fill.(s) <- fill.(s) + 1
  done;
  let xas =
    Array.init d (fun _ -> Array.init d (fun _ -> { x_slot = [||]; x_len = 0 }))
  in
  let xpush xa slot =
    let cap = Array.length xa.x_slot in
    if xa.x_len = cap then begin
      let ncap = max 8 (2 * cap) in
      let ns = Array.make ncap 0 in
      Array.blit xa.x_slot 0 ns 0 cap;
      xa.x_slot <- ns
    end;
    xa.x_slot.(xa.x_len) <- slot;
    xa.x_len <- xa.x_len + 1
  in
  let instrumented = sink != Sink.null in
  let evpush sh src dst w =
    let cap = Array.length sh.sh_ev_src in
    if sh.sh_ev_len = cap then begin
      let ncap = max 16 (2 * cap) in
      let a = Array.make ncap 0 and b = Array.make ncap 0 and c = Array.make ncap 0 in
      Array.blit sh.sh_ev_src 0 a 0 cap;
      Array.blit sh.sh_ev_dst 0 b 0 cap;
      Array.blit sh.sh_ev_w 0 c 0 cap;
      sh.sh_ev_src <- a;
      sh.sh_ev_dst <- b;
      sh.sh_ev_w <- c
    end;
    sh.sh_ev_src.(sh.sh_ev_len) <- src;
    sh.sh_ev_dst.(sh.sh_ev_len) <- dst;
    sh.sh_ev_w.(sh.sh_ev_len) <- w;
    sh.sh_ev_len <- sh.sh_ev_len + 1
  in
  (* replay deferred on_message events in ascending source id — the
     sequential emission order.  [limit]/[owner] truncate the replay to
     what the sequential sweep emitted before raising at node [limit]:
     everything from sources below it, plus the violating shard's own
     events at the violating node. *)
  let emit_events ~round ~limit ~owner =
    let idx = Array.make d 0 in
    let continue = ref true in
    while !continue do
      let best = ref (-1) in
      let best_src = ref max_int in
      for s = 0 to d - 1 do
        let sh = shards.(s) in
        if idx.(s) < sh.sh_ev_len then begin
          let src = sh.sh_ev_src.(idx.(s)) in
          if (src < limit || (src = limit && s = owner)) && src < !best_src
          then begin
            best := s;
            best_src := src
          end
        end
      done;
      if !best < 0 then continue := false
      else begin
        let sh = shards.(!best) in
        let i = idx.(!best) in
        sink.on_message ~round ~src:sh.sh_ev_src.(i) ~dst:sh.sh_ev_dst.(i)
          ~words:sh.sh_ev_w.(i);
        idx.(!best) <- i + 1
      end
    done
  in
  let churn_edge_down, churn_crashed, churn_dormant =
    match churn with
    | Some (c : Churn.t) ->
      (c.Churn.edge_down, c.Churn.crashed, c.Churn.dormant)
    | None -> ([||], [||], [||])
  in
  let churn_on = churn <> None in
  (* initial liveness *)
  for v = 0 to n - 1 do
    if (not (a_halted states.(v))) && not (churn_on && churn_dormant.(v))
    then begin
      let sh = shards.(shard_of.(v)) in
      is_live.(v) <- true;
      is_always.(v) <- true;
      sh.sh_live.(sh.sh_live_len) <- v;
      sh.sh_live_len <- sh.sh_live_len + 1
    end
  done;
  (* serially-written controls read by the phase bodies *)
  let cur_is_a = ref false in  (* true when buffer A is the delivery side *)
  let round = ref 0 in
  let hinted = ref false in
  let transition = ref false in
  let trans_flag = ref false in
  let dense_flag = ref true in
  let vmin_flag = ref (-1) in
  let messages = ref 0 and max_inflight = ref 0 in
  let live_total = ref 0 in
  Array.iter (fun sh -> live_total := !live_total + sh.sh_live_len) shards;
  let pending_next = ref 0 in
  let sbuf_of sh ~delivery =
    if !cur_is_a = delivery then sh.sh_a else sh.sh_b
  in
  let schedule sh v k =
    wake_at.(v) <- k;
    let len = Array.length sh.sh_buckets in
    if k >= len then begin
      let b = Array.make (max (k + 1) (2 * len)) [] in
      Array.blit sh.sh_buckets 0 b 0 len;
      sh.sh_buckets <- b
    end;
    sh.sh_buckets.(k) <- v :: sh.sh_buckets.(k)
  in
  let apply_wake sh v st r =
    match a_wake st with
    | Always ->
      if not is_always.(v) then begin
        is_always.(v) <- true;
        sh.sh_always.(sh.sh_alen) <- v;
        sh.sh_alen <- sh.sh_alen + 1;
        sh.sh_always_unsorted <- true
      end;
      wake_at.(v) <- -1
    | hint ->
      sh.sh_hinted <- true;
      if is_always.(v) then begin
        is_always.(v) <- false;
        sh.sh_always_dirty <- true
      end;
      (match hint with
      | Next -> schedule sh v (r + 1)
      | At k -> if k > r then schedule sh v k else wake_at.(v) <- -1
      | OnMessage -> wake_at.(v) <- -1
      | Always -> assert false)
  in
  let record sh v prio exn =
    sh.sh_vnode <- v;
    sh.sh_vprio <- prio;
    sh.sh_vexn <- Some exn;
    raise Stop_shard
  in
  (* Per-shard emitters: same checks and bookkeeping as the list path's
     store loop, but the frame is encoded directly into the shared send
     arena by its unique sender.  Cross-shard destinations get an int
     push; the owning destination shard completes the receiver-side
     bookkeeping at phase B. *)
  (match algo with
  | A_list _ -> ()
  | A_emit _ ->
    Array.iteri
      (fun s sh ->
        let em = sh.sh_em in
        em.Emit.estart <-
          (fun t u ->
            if t.Emit.eopen then
              invalid_arg "Engine.Emit.start: frame already open";
            let v = t.Emit.enode in
            let r = !round in
            let slot = find_port e ~src:v ~dst:u in
            if slot < 0 then
              record sh v 1
                (Congestion_violation
                   (Printf.sprintf "round %d: node %d sent to non-neighbor %d"
                      r v u));
            if
              churn_on
              && (churn_edge_down.(slot) || churn_crashed.(u)
                 || churn_dormant.(u))
            then t.Emit.edead <- true
            else begin
              if sent_stamp.(slot) = r then
                record sh v 1
                  (Congestion_violation
                     (Printf.sprintf
                        "round %d: node %d sent twice over edge to %d" r v u));
              sent_stamp.(slot) <- r;
              t.Emit.edead <- false
            end;
            t.Emit.edst <- u;
            t.Emit.eslot <- slot;
            t.Emit.eopen <- true;
            let sdata = if !cur_is_a then data_b else data_a in
            Codec.attach_writer ~guard t.Emit.ew sdata ~base:(slot * stride)
              ~budget:max_words;
            t.Emit.ew);
        em.Emit.ecommit <-
          (fun t ->
            if not t.Emit.eopen then
              invalid_arg "Engine.Emit.commit: no open frame";
            t.Emit.eopen <- false;
            if t.Emit.edead then
              sh.sh_send_dropped <- sh.sh_send_dropped + 1
            else begin
              let slot = t.Emit.eslot and u = t.Emit.edst in
              let w = Codec.words t.Emit.ew
              and wire = Codec.seal t.Emit.ew in
              let swire = if !cur_is_a then wire_b else wire_a in
              let swlog = if !cur_is_a then wlog_b else wlog_a in
              swire.(slot) <- wire;
              swlog.(slot) <- w;
              let tgt = shard_of.(u) in
              if tgt = s then begin
                let svb = sbuf_of sh ~delivery:false in
                let scount = if !cur_is_a then count_b else count_a in
                svb.s_written.(svb.s_wlen) <- slot;
                svb.s_wlen <- svb.s_wlen + 1;
                if scount.(u) = 0 then begin
                  svb.s_active.(svb.s_alen) <- u;
                  svb.s_alen <- svb.s_alen + 1
                end;
                scount.(u) <- scount.(u) + 1;
                svb.s_total <- svb.s_total + 1;
                svb.s_words <- svb.s_words + w;
                svb.s_bits <- svb.s_bits + (word_bits * wire)
              end
              else xpush xas.(s).(tgt) slot;
              sh.sh_emitted <- sh.sh_emitted + 1;
              if instrumented then evpush sh t.Emit.enode u w
            end);
        (* Broadcast fast path, sharded: encode once into the shard's
           scratch, then walk the sender's contiguous out-port segment —
           every slot belongs to this shard's sender, so the writes race
           with nobody; only the cross-shard pushes go through [xpush]. *)
        let bscratch =
          Bytes.create (2 * (Codec.max_wire_words + Codec.guard_words))
        in
        (* Broadcast memo (see the sequential executor): one encode per
           distinct consecutive value, per shard. *)
        let bmemo_live = ref false
        and bmemo_a = ref 0
        and bmemo_wire = ref 0 in
        em.Emit.ebroadcast1 <-
          (fun t a ->
            if t.Emit.eopen then
              invalid_arg "Engine.Emit.broadcast1: frame already open";
            let v = t.Emit.enode in
            let r = !round in
            if max_words < 1 then
              record sh v 1
                (Congestion_violation
                   (Printf.sprintf
                      "round %d: node %d payload of %d words exceeds %d" r v 1
                      max_words));
            let wire =
              if !bmemo_live && !bmemo_a = a then !bmemo_wire
              else begin
                let w =
                  if guard then Codec.encode1_guarded bscratch ~base:0 a
                  else Codec.encode1 bscratch ~base:0 a
                in
                bmemo_live := true;
                bmemo_a := a;
                bmemo_wire := w;
                w
              end
            in
            let sdata = if !cur_is_a then data_b else data_a in
            let swire = if !cur_is_a then wire_b else wire_a in
            let swlog = if !cur_is_a then wlog_b else wlog_a in
            let scount = if !cur_is_a then count_b else count_a in
            let svb = sbuf_of sh ~delivery:false in
            for slot = e.out_off.(v) to e.out_off.(v + 1) - 1 do
              let u = e.out_dst.(slot) in
              if
                churn_on
                && (churn_edge_down.(slot) || churn_crashed.(u)
                   || churn_dormant.(u))
              then sh.sh_send_dropped <- sh.sh_send_dropped + 1
              else begin
                if sent_stamp.(slot) = r then
                  record sh v 1
                    (Congestion_violation
                       (Printf.sprintf
                          "round %d: node %d sent twice over edge to %d" r v u));
                sent_stamp.(slot) <- r;
                (* width-specialized stores: the 1- and 2-word (guarded)
                   broadcast frames skip the blit call entirely *)
                if wire = 1 then
                  Bytes.set_uint16_le sdata (slot * stride)
                    (Bytes.get_uint16_le bscratch 0)
                else if wire = 2 then
                  Bytes.set_int32_le sdata (slot * stride)
                    (Bytes.get_int32_le bscratch 0)
                else Bytes.blit bscratch 0 sdata (slot * stride) (2 * wire);
                swire.(slot) <- wire;
                swlog.(slot) <- 1;
                let tgt = shard_of.(u) in
                if tgt = s then begin
                  svb.s_written.(svb.s_wlen) <- slot;
                  svb.s_wlen <- svb.s_wlen + 1;
                  if scount.(u) = 0 then begin
                    svb.s_active.(svb.s_alen) <- u;
                    svb.s_alen <- svb.s_alen + 1
                  end;
                  scount.(u) <- scount.(u) + 1;
                  svb.s_total <- svb.s_total + 1;
                  svb.s_words <- svb.s_words + 1;
                  svb.s_bits <- svb.s_bits + (word_bits * wire)
                end
                else xpush xas.(s).(tgt) slot;
                sh.sh_emitted <- sh.sh_emitted + 1;
                if instrumented then evpush sh v u 1
              end
            done))
      shards);
  (* Per-shard deferred in-port scans (see the sequential executor): the
     delivery side is re-derived from [cur_is_a] at fill time, and every
     filled slot was published at the last frame exchange, so the lazy
     scan reads exactly what the eager one did. *)
  Array.iter
    (fun sh ->
      sh.sh_ib.Inbox.filler <-
        (fun ib ->
          let v = ib.Inbox.fill_node in
          ib.Inbox.fill_node <- -1;
          let dwire = if !cur_is_a then wire_a else wire_b in
          let dcount = if !cur_is_a then count_a else count_b in
          if dcount.(v) > 0 then
            for j = e.in_off.(v) to e.in_off.(v + 1) - 1 do
              let slot = e.in_slot.(j) in
              if dwire.(slot) >= 0 then begin
                ib.Inbox.src.(ib.Inbox.len) <- e.in_src.(j);
                ib.Inbox.slot.(ib.Inbox.len) <- slot;
                ib.Inbox.len <- ib.Inbox.len + 1
              end
            done))
    shards;
  (* phase A: step this shard's frontier for round [!round] *)
  let phase_step s =
    let sh = shards.(s) in
    let r = !round in
    let v_min = !vmin_flag in
    let dvb = sbuf_of sh ~delivery:true in
    let svb = sbuf_of sh ~delivery:false in
    let ddata = if !cur_is_a then data_a else data_b in
    let dwire = if !cur_is_a then wire_a else wire_b in
    let dwlog = if !cur_is_a then wlog_a else wlog_b in
    let dcount = if !cur_is_a then count_a else count_b in
    let sdata = if !cur_is_a then data_b else data_a in
    let swire = if !cur_is_a then wire_b else wire_a in
    let swlog = if !cur_is_a then wlog_b else wlog_a in
    let scount = if !cur_is_a then count_b else count_a in
    Inbox.attach sh.sh_ib ~data:ddata ~wire:dwire ~wlog:dwlog ~stride;
    sh.sh_stepped <- 0;
    sh.sh_woken <- 0;
    sh.sh_emitted <- 0;
    sh.sh_send_dropped <- 0;
    sh.sh_hinted <- false;
    sh.sh_ev_len <- 0;
    if !trans_flag then begin
      (* first non-Always hint last round: seed the Always set from the
         live list (ascending, so it starts sorted) *)
      sh.sh_alen <- 0;
      for i = 0 to sh.sh_live_len - 1 do
        let v = sh.sh_live.(i) in
        if is_always.(v) then begin
          sh.sh_always.(sh.sh_alen) <- v;
          sh.sh_alen <- sh.sh_alen + 1
        end
      done;
      sh.sh_always_dirty <- false;
      sh.sh_always_unsorted <- false
    end;
    let step_node v =
      if v_min >= 0 && v_min < v then
        record sh v 0
          (Congestion_violation
             (Printf.sprintf "round %d: halted node %d received a message" r
                v_min));
      (* mark the inbox for a lazy fill, as in the sequential executor *)
      let ib = sh.sh_ib in
      ib.Inbox.len <- 0;
      ib.Inbox.fill_node <- v;
      let st =
        match algo with
        | A_list a ->
          let st, outbox =
            try a.step g ~round:r ~node:v states.(v) ib
            with
            | Stop_shard as exn -> raise exn
            | exn -> record sh v 1 exn
          in
          List.iter
            (fun (u, p) ->
              let slot = find_port e ~src:v ~dst:u in
              if slot < 0 then
                record sh v 1
                  (Congestion_violation
                     (Printf.sprintf "round %d: node %d sent to non-neighbor %d" r
                        v u));
              if
                churn_on
                && (churn_edge_down.(slot) || churn_crashed.(u)
                   || churn_dormant.(u))
              then begin
                let w = Array.length p in
                if w > max_words then
                  record sh v 1
                    (Congestion_violation
                       (Printf.sprintf
                          "round %d: node %d payload of %d words exceeds %d" r v w
                          max_words));
                sh.sh_send_dropped <- sh.sh_send_dropped + 1
              end
              else begin
                if sent_stamp.(slot) = r then
                  record sh v 1
                    (Congestion_violation
                       (Printf.sprintf "round %d: node %d sent twice over edge to %d"
                          r v u));
                let w = Array.length p in
                if w > max_words then
                  record sh v 1
                    (Congestion_violation
                       (Printf.sprintf
                          "round %d: node %d payload of %d words exceeds %d" r v w
                          max_words));
                sent_stamp.(slot) <- r;
                let wire =
                  if guard then
                    Codec.encode_guarded sdata ~base:(slot * stride) p
                  else Codec.encode sdata ~base:(slot * stride) p
                in
                swire.(slot) <- wire;
                swlog.(slot) <- w;
                let t = shard_of.(u) in
                if t = s then begin
                  svb.s_written.(svb.s_wlen) <- slot;
                  svb.s_wlen <- svb.s_wlen + 1;
                  if scount.(u) = 0 then begin
                    svb.s_active.(svb.s_alen) <- u;
                    svb.s_alen <- svb.s_alen + 1
                  end;
                  scount.(u) <- scount.(u) + 1;
                  svb.s_total <- svb.s_total + 1;
                  svb.s_words <- svb.s_words + w;
                  svb.s_bits <- svb.s_bits + (word_bits * wire)
                end
                else xpush xas.(s).(t) slot;
                sh.sh_emitted <- sh.sh_emitted + 1;
                if instrumented then evpush sh v u w
              end)
            outbox;
          st
        | A_emit a ->
          let em = sh.sh_em in
          em.Emit.enode <- v;
          let st =
            try a.estep g ~round:r ~node:v states.(v) ib em
            with
            | Stop_shard as exn -> raise exn
            | Codec.Width_exceeded { budget; words } ->
              record sh v 1
                (Congestion_violation
                   (Printf.sprintf
                      "round %d: node %d payload of %d words exceeds %d" r v
                      words budget))
            | exn -> record sh v 1 exn
          in
          if em.Emit.eopen then begin
            em.Emit.eopen <- false;
            record sh v 1
              (Invalid_argument "Engine.Emit: frame left open at end of step")
          end;
          st
      in
      states.(v) <- st;
      if a_halted st then begin
        is_live.(v) <- false;
        sh.sh_compact <- true;
        if is_always.(v) then begin
          is_always.(v) <- false;
          sh.sh_always_dirty <- true
        end;
        wake_at.(v) <- -1
      end
      else if not degrade then apply_wake sh v st r
    in
    (try
       if !dense_flag then begin
         sh.sh_stepped <- sh.sh_live_len - sh.sh_crashed_live;
         for i = 0 to sh.sh_live_len - 1 do
           let v = sh.sh_live.(i) in
           if is_live.(v) then step_node v
         done
       end
       else begin
         let plen = ref 0 in
         let push v =
           if fstamp.(v) <> r then begin
             fstamp.(v) <- r;
             sh.sh_frontier.(!plen) <- v;
             incr plen
           end
         in
         if r < Array.length sh.sh_buckets then begin
           let fired = sh.sh_buckets.(r) in
           sh.sh_buckets.(r) <- [];
           List.iter
             (fun v ->
               if wake_at.(v) = r then begin
                 wake_at.(v) <- -1;
                 if is_live.(v) then begin
                   sh.sh_woken <- sh.sh_woken + 1;
                   push v
                 end
               end)
             fired
         end;
         for i = 0 to dvb.s_alen - 1 do
           let v = dvb.s_active.(i) in
           if is_live.(v) && dcount.(v) > 0 then push v
         done;
         for i = 0 to sh.sh_alen - 1 do
           push sh.sh_always.(i)
         done;
         sort_prefix sh.sh_frontier !plen;
         sh.sh_stepped <- !plen;
         for i = 0 to !plen - 1 do
           step_node sh.sh_frontier.(i)
         done
       end
     with Stop_shard -> ());
    if sh.sh_vnode < 0 then begin
      (* receivers / delivered words before clearing; a receiver whose whole
         inbox was churned away received nothing *)
      sh.sh_receivers <-
        (if sh.sh_hit then begin
           let c = ref 0 in
           for i = 0 to dvb.s_alen - 1 do
             if dcount.(dvb.s_active.(i)) > 0 then incr c
           done;
           !c
         end
         else dvb.s_alen);
      sh.sh_delivered_words <- dvb.s_words;
      sh.sh_delivered_bits <- dvb.s_bits;
      for j = 0 to dvb.s_wlen - 1 do
        dwire.(dvb.s_written.(j)) <- -1
      done;
      for i = 0 to dvb.s_alen - 1 do
        dcount.(dvb.s_active.(i)) <- 0
      done;
      dvb.s_wlen <- 0;
      dvb.s_alen <- 0;
      dvb.s_total <- 0;
      dvb.s_words <- 0;
      dvb.s_bits <- 0;
      if sh.sh_compact then begin
        let w = ref 0 in
        for i = 0 to sh.sh_live_len - 1 do
          let v = sh.sh_live.(i) in
          if is_live.(v) then begin
            sh.sh_live.(!w) <- v;
            incr w
          end
        done;
        sh.sh_live_len <- !w;
        sh.sh_compact <- false
      end;
      if not !trans_flag && (sh.sh_always_dirty || sh.sh_always_unsorted)
      then begin
        let w = ref 0 in
        for i = 0 to sh.sh_alen - 1 do
          let v = sh.sh_always.(i) in
          if is_live.(v) && is_always.(v) then begin
            sh.sh_always.(!w) <- v;
            incr w
          end
        done;
        sh.sh_alen <- !w;
        if sh.sh_always_unsorted then sort_prefix sh.sh_always sh.sh_alen;
        sh.sh_always_dirty <- false;
        sh.sh_always_unsorted <- false
      end
    end
  in
  (* phase B: drain the cross arenas addressed to this shard, in src-shard
     order, into the send buffer; then compute the halted-receiver
     candidate the next round's serial section needs *)
  let phase_exchange t =
    let sh = shards.(t) in
    let svb = sbuf_of sh ~delivery:false in
    let swire = if !cur_is_a then wire_b else wire_a in
    let swlog = if !cur_is_a then wlog_b else wlog_a in
    let scount = if !cur_is_a then count_b else count_a in
    for s = 0 to d - 1 do
      let xa = xas.(s).(t) in
      for i = 0 to xa.x_len - 1 do
        let slot = xa.x_slot.(i) in
        let u = e.out_dst.(slot) in
        svb.s_written.(svb.s_wlen) <- slot;
        svb.s_wlen <- svb.s_wlen + 1;
        if scount.(u) = 0 then begin
          svb.s_active.(svb.s_alen) <- u;
          svb.s_alen <- svb.s_alen + 1
        end;
        scount.(u) <- scount.(u) + 1;
        svb.s_total <- svb.s_total + 1;
        svb.s_words <- svb.s_words + swlog.(slot);
        svb.s_bits <- svb.s_bits + (word_bits * swire.(slot))
      done;
      xa.x_len <- 0
    done;
    sh.sh_vmin <- -1;
    for i = 0 to svb.s_alen - 1 do
      let v = svb.s_active.(i) in
      if (not is_live.(v)) && scount.(v) > 0
         && (sh.sh_vmin < 0 || v < sh.sh_vmin)
      then sh.sh_vmin <- v
    done
  in
  let body pool =
    while !live_total > 0 || !pending_next > 0 do
      if !round > max_rounds then raise (Round_limit_exceeded !round);
      cur_is_a := not !cur_is_a;
      let r = !round in
      let ddata = if !cur_is_a then data_a else data_b in
      let dwire = if !cur_is_a then wire_a else wire_b in
      let dwlog = if !cur_is_a then wlog_a else wlog_b in
      let dcount = if !cur_is_a then count_a else count_b in
      (* churn is applied serially: it is rare, touches arbitrary shards,
         and must be globally ordered before the halted-receiver minimum *)
      let churn_dropped = ref 0 in
      let newly_crashed = ref 0 in
      let newly_arrived = ref 0 in
      let newly_departed = ref 0 in
      let newly_inserted = ref 0 in
      let churn_applied = ref false in
      let live_unsorted = ref false in
      Array.iter
        (fun sh ->
          sh.sh_crashed_live <- 0;
          sh.sh_hit <- false)
        shards;
      (match churn with
      | Some c ->
        let len = Array.length c.Churn.ops in
        let kill v =
          let sh = shards.(shard_of.(v)) in
          let dvb = sbuf_of sh ~delivery:true in
          if dcount.(v) > 0 then begin
            for j = e.in_off.(v) to e.in_off.(v + 1) - 1 do
              let slot = e.in_slot.(j) in
              let wv = dwire.(slot) in
              if wv >= 0 then begin
                dwire.(slot) <- -1;
                dvb.s_total <- dvb.s_total - 1;
                dvb.s_words <- dvb.s_words - dwlog.(slot);
                dvb.s_bits <- dvb.s_bits - (word_bits * wv);
                incr churn_dropped
              end
            done;
            dcount.(v) <- 0;
            sh.sh_hit <- true
          end;
          if is_live.(v) then begin
            is_live.(v) <- false;
            sh.sh_crashed_live <- sh.sh_crashed_live + 1;
            sh.sh_compact <- true;
            if is_always.(v) then begin
              is_always.(v) <- false;
              sh.sh_always_dirty <- true
            end;
            wake_at.(v) <- -1
          end
        in
        while
          c.Churn.cursor < len
          && Churn.round_of c.Churn.events.(c.Churn.cursor) <= r
        do
          churn_applied := true;
          (match c.Churn.ops.(c.Churn.cursor) with
          | Churn.Op_crash v ->
            if not c.Churn.crashed.(v) then begin
              c.Churn.crashed.(v) <- true;
              incr newly_crashed;
              kill v
            end
          | Churn.Op_depart v ->
            if not c.Churn.crashed.(v) then begin
              c.Churn.crashed.(v) <- true;
              incr newly_departed;
              kill v
            end
          | Churn.Op_arrive v ->
            if c.Churn.dormant.(v) then begin
              c.Churn.dormant.(v) <- false;
              incr newly_arrived;
              if (not c.Churn.crashed.(v)) && not (a_halted states.(v))
              then begin
                let sh = shards.(shard_of.(v)) in
                is_live.(v) <- true;
                sh.sh_live.(sh.sh_live_len) <- v;
                sh.sh_live_len <- sh.sh_live_len + 1;
                live_unsorted := true;
                is_always.(v) <- true;
                if !hinted then begin
                  sh.sh_always.(sh.sh_alen) <- v;
                  sh.sh_alen <- sh.sh_alen + 1;
                  sh.sh_always_unsorted <- true
                end
              end
            end
          | Churn.Op_down slot ->
            if not c.Churn.edge_down.(slot) then begin
              c.Churn.edge_down.(slot) <- true;
              let wv = dwire.(slot) in
              if wv >= 0 then begin
                let u = e.out_dst.(slot) in
                let sh = shards.(shard_of.(u)) in
                let dvb = sbuf_of sh ~delivery:true in
                dwire.(slot) <- -1;
                dvb.s_total <- dvb.s_total - 1;
                dvb.s_words <- dvb.s_words - dwlog.(slot);
                dvb.s_bits <- dvb.s_bits - (word_bits * wv);
                dcount.(u) <- dcount.(u) - 1;
                incr churn_dropped;
                sh.sh_hit <- true
              end
            end
          | Churn.Op_add slot ->
            if c.Churn.edge_down.(slot) then begin
              c.Churn.edge_down.(slot) <- false;
              incr newly_inserted
            end
          | Churn.Op_up slot -> c.Churn.edge_down.(slot) <- false);
          c.Churn.cursor <- c.Churn.cursor + 1
        done;
        if !live_unsorted then
          Array.iter (fun sh -> sort_prefix sh.sh_live sh.sh_live_len) shards
      | None -> ());
      (* wire corruption, applied serially like churn: the decisions are
         the same (cseed, round, slot, lane) hashes the sequential pass
         makes, and each kill touches only the destination shard's
         delivery buffer — bit-identity with the sequential executor is
         per-slot exact *)
      let corrupt_dropped = ref 0 in
      let corrupt_killed = ref false in
      (match corrupt with
      | Some (cs : Corrupt.spec) ->
        let inten = Corrupt.intensity cs ~round:r in
        let fthr = Corrupt.threshold (cs.Corrupt.flip *. inten) in
        let tthr = Corrupt.threshold (cs.Corrupt.truncate *. inten) in
        if fthr > 0 || tthr > 0 then begin
          let cseed = cs.Corrupt.cseed and burst = cs.Corrupt.burst in
          let tally = cs.Corrupt.tally in
          Array.iter
            (fun sh ->
              let dvb = sbuf_of sh ~delivery:true in
              for j = 0 to dvb.s_wlen - 1 do
                let slot = dvb.s_written.(j) in
                let wv = dwire.(slot) in
                if wv >= 0 then begin
                  let kill () =
                    dwire.(slot) <- -1;
                    dvb.s_total <- dvb.s_total - 1;
                    dvb.s_words <- dvb.s_words - dwlog.(slot);
                    dvb.s_bits <- dvb.s_bits - (word_bits * wv);
                    dcount.(e.out_dst.(slot)) <- dcount.(e.out_dst.(slot)) - 1;
                    sh.sh_hit <- true;
                    corrupt_killed := true;
                    incr corrupt_dropped
                  in
                  let h0 = Corrupt.decide ~cseed ~round:r ~slot ~lane:0 in
                  if tthr > 0 && Corrupt.hit h0 tthr && wv > 1 then begin
                    tally.Corrupt.injected <- tally.Corrupt.injected + 1;
                    tally.Corrupt.truncated <- tally.Corrupt.truncated + 1;
                    kill ()
                  end
                  else if fthr > 0 then begin
                    let base = slot * stride in
                    let hitany = ref false in
                    for i = 0 to wv - 1 do
                      let h =
                        Corrupt.decide ~cseed ~round:r ~slot ~lane:(i + 1)
                      in
                      if Corrupt.hit h fthr then begin
                        hitany := true;
                        let stop = min (i + burst - 1) (wv - 1) in
                        for jj = i to stop do
                          let hm =
                            if jj = i then h
                            else
                              Corrupt.decide ~cseed ~round:r ~slot
                                ~lane:(wv + 1 + jj)
                          in
                          let off = base + (2 * jj) in
                          Bytes.set_uint16_le ddata off
                            (Bytes.get_uint16_le ddata off
                            lxor Corrupt.mask hm)
                        done
                      end
                    done;
                    if !hitany then begin
                      tally.Corrupt.injected <- tally.Corrupt.injected + 1;
                      let clean =
                        Codec.verify ddata ~base ~wire:wv
                        && Codec.well_formed ddata ~base
                             ~wire:(wv - Codec.guard_words)
                             ~words:dwlog.(slot)
                      in
                      if not clean then begin
                        tally.Corrupt.detected <- tally.Corrupt.detected + 1;
                        kill ()
                      end
                    end
                  end
                end
              done)
            shards
        end
      | None -> ());
      let this_round = ref 0 in
      let live_snapshot = ref 0 in
      Array.iter
        (fun sh ->
          this_round := !this_round + (sbuf_of sh ~delivery:true).s_total;
          live_snapshot := !live_snapshot + sh.sh_live_len - sh.sh_crashed_live)
        shards;
      max_inflight := max !max_inflight !this_round;
      messages := !messages + !this_round;
      let v_min = ref (-1) in
      if !churn_applied || !corrupt_killed then
        (* churn can only remove candidates, but removing the minimum
           exposes the next one: recompute from the surviving counts *)
        Array.iter
          (fun sh ->
            let dvb = sbuf_of sh ~delivery:true in
            for i = 0 to dvb.s_alen - 1 do
              let v = dvb.s_active.(i) in
              if (not is_live.(v)) && dcount.(v) > 0
                 && (!v_min < 0 || v < !v_min)
              then v_min := v
            done)
          shards
      else
        Array.iter
          (fun sh ->
            if sh.sh_vmin >= 0 && (!v_min < 0 || sh.sh_vmin < !v_min) then
              v_min := sh.sh_vmin)
          shards;
      vmin_flag := !v_min;
      dense_flag := not !hinted;
      trans_flag := !transition;
      transition := false;
      Pool.run pool phase_step;
      (* violation resolution: the lexicographically smallest (node,
         priority) is the one the sequential sweep would have raised *)
      let vs = ref (-1) in
      for s = 0 to d - 1 do
        let sh = shards.(s) in
        if sh.sh_vnode >= 0
           && (!vs < 0
              || sh.sh_vnode < shards.(!vs).sh_vnode
              || (sh.sh_vnode = shards.(!vs).sh_vnode
                 && sh.sh_vprio < shards.(!vs).sh_vprio))
        then vs := s
      done;
      if !vs >= 0 then begin
        let sh = shards.(!vs) in
        if instrumented then
          emit_events ~round:r ~limit:sh.sh_vnode ~owner:!vs;
        raise (Option.get sh.sh_vexn)
      end;
      if !v_min >= 0 then begin
        if instrumented then emit_events ~round:r ~limit:max_int ~owner:(-1);
        raise
          (Congestion_violation
             (Printf.sprintf "round %d: halted node %d received a message" r
                !v_min))
      end;
      if not !hinted then
        Array.iter
          (fun sh ->
            if sh.sh_hinted then begin
              hinted := true;
              transition := true
            end)
          shards;
      if instrumented then begin
        emit_events ~round:r ~limit:max_int ~owner:(-1);
        (* merge the per-shard counters with the associative combine; the
           whole-round fields (delivered, skipped, churn drops, crashes)
           are patched in from the serial section's global view *)
        let acc = ref (Sink.empty_round_info r) in
        Array.iter
          (fun sh ->
            acc :=
              Sink.combine_round_info !acc
                {
                  Sink.round = r;
                  delivered = 0;
                  delivered_words = sh.sh_delivered_words;
                  delivered_bits = sh.sh_delivered_bits;
                  receivers = sh.sh_receivers;
                  stepped = sh.sh_stepped;
                  skipped = 0;
                  woken = sh.sh_woken;
                  sent = sh.sh_emitted;
                  dropped = sh.sh_send_dropped;
                  duplicated = 0;
                  retransmits = 0;
                  corrupted = 0;
                  crashed = 0;
                  arrived = 0;
                  departed = 0;
                  inserted = 0;
                })
          shards;
        let agg = !acc in
        sink.on_round
          {
            agg with
            Sink.delivered = !this_round;
            skipped = !live_snapshot - agg.Sink.stepped;
            dropped = agg.Sink.dropped + !churn_dropped;
            corrupted = !corrupt_dropped;
            crashed = !newly_crashed;
            arrived = !newly_arrived;
            departed = !newly_departed;
            inserted = !newly_inserted;
          }
      end;
      Pool.run pool phase_exchange;
      pending_next := 0;
      live_total := 0;
      Array.iter
        (fun sh ->
          pending_next := !pending_next + (sbuf_of sh ~delivery:false).s_total;
          live_total := !live_total + sh.sh_live_len)
        shards;
      incr round
    done
  in
  Pool.with_pool ~domains:d body;
  e.running <- false;
  if instrumented then sink.on_finish ();
  (states, { rounds = !round; messages = !messages; max_inflight = !max_inflight })

(* When [exec] is called without [?domains] this reference supplies the
   default — the hook [kdom_cli --domains] threads parallelism through
   composite algorithms whose inner [Runtime.run] calls cannot be reached
   syntactically.  1 = the sequential engine, the bit-exact baseline. *)
let default_domains = ref 1

let exec_any ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt
    ?domains ?partition e algo =
  if e.running then
    invalid_arg "Engine.exec: engine already running (re-entrant call)";
  let domains = match domains with Some d -> d | None -> !default_domains in
  if domains < 1 then invalid_arg "Engine.exec: domains < 1";
  (* clear [running] on abnormal exit so the engine stays usable; [dirty]
     stays set, forcing a buffer scrub on the next exec *)
  try
    if domains = 1 then
      exec_unguarded ?max_rounds ?max_words ?sink ?degrade ?churn ?guard
        ?corrupt e algo
    else
      exec_sharded ?max_rounds ?max_words ?sink ?degrade ?churn ?guard
        ?corrupt ~domains ?partition e algo
  with exn ->
    e.running <- false;
    raise exn

let exec ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt ?domains
    ?partition e algo =
  exec_any ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt
    ?domains ?partition e (A_list algo)

let exec_emit ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt
    ?domains ?partition e ealgo =
  exec_any ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt
    ?domains ?partition e (A_emit ealgo)

let run ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt ?domains
    ?partition g algo =
  exec ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt ?domains
    ?partition (create g) algo

let run_emit ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt
    ?domains ?partition g ealgo =
  exec_emit ?max_rounds ?max_words ?sink ?degrade ?churn ?guard ?corrupt
    ?domains ?partition (create g) ealgo

(* The emit -> list compat adapter: wraps an emit-native algorithm into the
   legacy list-returning shape so it can run under [run_reference], the
   async layer, or any harness that still consumes [algorithm].  All emit
   state is step-local (one small writer per step), so the adapted
   algorithm is safe under the sharded executor too.  With [?max_words]
   the scratch writer enforces the same budget at the same put — raising
   the same [Congestion_violation] text the engine's emit path produces —
   so differential runs agree byte-for-byte; without it frames are
   unbounded here and the executor's own width check applies instead. *)
let to_algorithm ?max_words (ea : 'st ealgorithm) : 'st algorithm =
  let budget = match max_words with Some w -> w | None -> max_int in
  {
    init = ea.einit;
    step =
      (fun g ~round ~node st ib ->
        let em = Emit.make () in
        let acc = ref [] in
        em.Emit.estart <-
          (fun t u ->
            if t.Emit.eopen then
              invalid_arg "Engine.Emit.start: frame already open";
            t.Emit.edst <- u;
            t.Emit.eopen <- true;
            Codec.scratch_writer t.Emit.ew ~budget;
            t.Emit.ew);
        em.Emit.ecommit <-
          (fun t ->
            if not t.Emit.eopen then
              invalid_arg "Engine.Emit.commit: no open frame";
            t.Emit.eopen <- false;
            let p =
              Codec.decode (Codec.writer_bytes t.Emit.ew) ~base:0
                ~wire:(Codec.wire t.Emit.ew) ~words:(Codec.words t.Emit.ew)
            in
            acc := (t.Emit.edst, p) :: !acc);
        em.Emit.ebroadcast1 <-
          (fun t a ->
            if t.Emit.eopen then
              invalid_arg "Engine.Emit.broadcast1: frame already open";
            if budget < 1 then
              raise (Codec.Width_exceeded { budget; words = 1 });
            (* pushed in descending order: the step's whole send list is
               reversed once at the end, so these come out ascending — the
               same per-slot order the packed engine's broadcast writes. *)
            let nbrs = Graph.neighbors g t.Emit.enode in
            for i = Array.length nbrs - 1 downto 0 do
              let u, _ = nbrs.(i) in
              acc := (u, [| a |]) :: !acc
            done);
        em.Emit.enode <- node;
        let st =
          try ea.estep g ~round ~node st ib em
          with Codec.Width_exceeded { budget; words } ->
            raise
              (Congestion_violation
                 (Printf.sprintf
                    "round %d: node %d payload of %d words exceeds %d" round
                    node words budget))
        in
        if em.Emit.eopen then
          invalid_arg "Engine.Emit: frame left open at end of step";
        (st, List.rev !acc));
    halted = ea.ehalted;
    wake = ea.ewake;
  }
