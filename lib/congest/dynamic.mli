(** Live dynamic-graph self-healing: incremental [(k+1, O(k))] maintenance
    under interleaved edge/node churn.

    The static pipeline computes a dominating partition once; {!Repair}
    keeps it alive under {e destructive} churn.  This module closes the
    loop for {e constructive} churn too — edge insertions and node
    arrivals — and turns a whole {!Faults.script} (bursts of mixed
    add-edge / cut-edge / arrive / depart / crash events separated by
    quiescent windows) into one maintained execution:

    - The engine runs over the {e union} graph: every node and edge that
      will ever exist is in the CSR from the start, and {!Engine.Churn}'s
      liveness views hide reserved capacity ([Edge_add] slots pre-downed,
      [Arrive] nodes dormant) until its event fires — the zero-allocation
      engine shape survives arbitrary growth.
    - Each script window (one burst plus its quiescent tail) is one
      horizon-bounded {!Repair.run}.  Arriving nodes carry the joiner
      sentinel and ATTACH on their first step; insertions that shorten a
      cluster path are exploited by the heartbeat re-parenting rule.
    - At each checkpoint the decoded protocol state is {e normalized} back
      into a valid plan (depths and dominators recomputed from parent
      pointers; dead, cycle-caught or inconsistent nodes demoted to the
      joiner sentinel), so the next window resumes exactly where repair
      left off.
    - A {e radius watchdog} then checks every cluster tree against the
      O(k) bound and fires the [rebuild] callback {e per violating
      cluster} — a local re-domination (e.g. [Diam_dom.redominate] +
      [Cluster.write_tree] in the core layer, injected here to keep this
      library free of a core dependency) — never a global recompute.
    - {!Oracle.eventual_k_domination} is consulted at every checkpoint
      against the cumulative liveness masks, and the [recompute] callback
      prices the counterfactual full-FastDOM rerun so the report can
      compare incremental repair against recomputation as churn sweeps.

    Everything is deterministic: the engine is bit-identical across
    [?domains] (threaded via [Engine.default_domains]), the script is a
    pure function of its seed, and both callbacks are centralized. *)

open Kdom_graph

type config = {
  plan : Repair.plan;
      (** initial plan over the union graph; entries of nodes reserved
          for arrival are forced to the joiner sentinel *)
  beta : int;   (** heartbeat period (see {!Repair.config}) *)
  lease : int;  (** missed-wave tolerance *)
  dmax : int;   (** WELCOME depth cap floor; each window uses
                    [max dmax (Repair.default_dmax plan)] *)
  settle : int;
      (** per-window horizon in rounds: the burst fires at relative round
          1 and repair has [settle] rounds to restore the invariant;
          must cover detection ([lease * beta + depth]) plus the attach /
          takeover tail; >= 2 *)
  bound : int;
      (** the O(k) radius bound: watchdog threshold on cluster-tree depth
          and the oracle's domination bound; >= 1 *)
}

type window_report = {
  w_checkpoint : int;  (** absolute script round of this checkpoint *)
  w_events : int;      (** churn events in this window's burst *)
  w_crashed : int;
  w_departed : int;
  w_arrived : int;
  w_inserted : int;    (** reserved undirected edges brought online *)
  w_cut : int;         (** undirected edges severed *)
  w_suspicions : int;
  w_reparents : int;   (** opportunistic parent switches *)
  w_repair_latency : int;
      (** relative round of the last repair in the window; 0 = quiescent *)
  w_watchdog_fired : int;  (** clusters rebuilt locally *)
  w_rebuild_rounds : int;  (** rounds charged by the [rebuild] callback *)
  w_incremental_rounds : int;  (** repair latency + rebuild charges *)
  w_recompute_rounds : int;    (** the counterfactual full recompute *)
  w_oracle_failures : int;
  w_hb_frames : int;
  w_repair_frames : int;
}

type report = {
  windows : window_report list;  (** one per script checkpoint, in order *)
  total_incremental : int;
  total_recompute : int;
  final_plan : Repair.plan;  (** normalized; sentinel at dead nodes *)
  final_alive : bool array;
  final_down : (int * int) list;
      (** undirected edges unusable at the end: cut, or reserved and
          never inserted *)
  final_centers : int list;
}

val centers_of : Repair.plan -> alive:bool array -> int list
(** Distinct dominator ids claimed by live nodes, ascending. *)

val normalize : Repair.plan -> alive:bool array -> unit
(** Re-anchor a decoded state vector as a valid plan, in place: depths
    and dominators recomputed from parent pointers; dead nodes, broken
    parents and transient cycles demoted to the joiner sentinel.  The
    result always passes {!Repair.validate_plan}.  Exposed for tests. *)

val run :
  rebuild:(plan:Repair.plan -> members:int list -> down:(int * int) list -> int) ->
  recompute:(alive:bool array -> down:(int * int) list -> int) ->
  Graph.t ->
  config ->
  Faults.script ->
  report
(** Maintain [cfg.plan] across the whole script on union graph [g].
    [rebuild ~plan ~members ~down] must re-dominate the given cluster
    {e in place} (patch the members' plan entries, using only union edges
    not in [down] — the currently unusable undirected edges) and return
    the charged rounds; it is called only when the watchdog fires.  [recompute
    ~alive ~down] prices a from-scratch recompute of the surviving graph
    and is called once per checkpoint (pure pricing — its result is
    only accumulated).  Raises [Invalid_argument] on [settle < 2] or
    [bound < 1]. *)
