(** Span-based tracing for the CONGEST engine.

    A trace is a single monotonic {e round clock} shared by every execution
    a composite algorithm performs — engine runs advance it by one per
    delivery round (pulse, for the asynchronous executors), phase-level
    stages advance it with explicit {!charge}s — plus a tree of named
    {e spans} laid out on that clock.  Composite algorithms open one span
    per logical phase ([simple_mst.phase[i]], [diam_dom.census[l]],
    [dom_partition.iter[i]], [fastdom_g.fragment[f]]), so the paper's
    phase-level round bounds become observable, machine-checkable
    quantities: {!Metrics} aggregates per-span round/message totals and the
    tests assert e.g. that span [simple_mst.phase[i]] spends at most
    [5*2^i + 2] rounds (Lemma 4.3).

    Span naming convention: [<algorithm>[.<stage>]] in snake case, with a
    bracketed integer index for repeated phases — [bfs_tree],
    [diam_dom.census[3]], [fastdom_g.fragment[0]].  Indexes use the
    paper's numbering (phases and iterations count from 1, census levels
    and fragments from 0).

    The trace observes message traffic through an ordinary {!Engine.Sink}
    ({!sink} / {!wrap}), so it composes with user sinks via
    {!Engine.Sink.tee} and costs nothing when absent: every integration
    point takes a [?trace] option and the [None] path does not allocate.

    Exporters: {!export_chrome} writes Chrome trace-event JSON
    (load it at ui.perfetto.dev or chrome://tracing); {!export_jsonl}
    writes the versioned JSONL schema ({!schema_version}), one
    self-describing record per line, validated by {!validate_channel}. *)

type t
(** A mutable trace under construction. *)

type span = {
  id : int;             (** creation order, unique within the trace *)
  name : string;
  parent : int;         (** id of the enclosing span, or [-1] *)
  depth : int;          (** nesting depth at open time *)
  track : int;          (** display track; parallel spans get distinct tracks *)
  start_round : int;
  mutable stop_round : int;  (** exclusive; [-1] while still open *)
}

type span_stats = {
  s_rounds : int;       (** [stop_round - start_round] *)
  s_delivered : int;    (** messages delivered during the span *)
  s_words : int;        (** payload (logical) words delivered during the span *)
  s_bits : int;
      (** measured wire bits delivered during the span — the sum of
          {!Codec.measured_bits} over every delivered frame *)
  s_skipped : int;
      (** live-node steps the sparse scheduler elided during the span —
          [s_skipped / s_rounds] is the average frontier saving *)
  s_woken : int;        (** timer-driven wake-ups during the span *)
  s_dropped : int;
  s_duplicated : int;
  s_retransmits : int;
  s_corrupted : int;
      (** frames killed by the integrity guard during the span — injected
          wire corruption detected and dropped before delivery *)
  s_crashed : int;
      (** nodes fail-stopped by a churn schedule during the span *)
  s_arrived : int;
      (** dormant nodes brought online ({!Engine.Churn} [Arrive]) during
          the span *)
  s_departed : int;
      (** nodes that gracefully left ({!Engine.Churn} [Depart]) during the
          span *)
  s_inserted : int;
      (** reserved edges brought up ({!Engine.Churn} [Edge_add]) during
          the span *)
}

val create : unit -> t

val clock : t -> int
(** The current value of the round clock. *)

val sink : t -> Engine.Sink.t
(** A sink feeding this trace: every [on_round] advances the clock by one
    and buffers the (re-clocked) round record; every [on_message] updates
    the message-width and per-edge congestion accounting. *)

val wrap : ?trace:t -> ?sink:Engine.Sink.t -> unit -> Engine.Sink.t
(** The sink a traced run should pass to the engine: the trace's sink
    tee'd with the user's, either alone when the other is absent, and
    {!Engine.Sink.null} when both are — so an untraced, unsinked run stays
    on the engine's zero-dispatch path. *)

val span : t -> ?track:int -> string -> (unit -> 'a) -> 'a
(** [span t name f] opens a span at the current clock, runs [f], and
    closes the span at the clock [f] reached (also on exception).  Spans
    nest; the innermost open span becomes the parent of spans opened
    inside [f]. *)

val span_opt : t option -> ?track:int -> string -> (unit -> 'a) -> 'a
(** {!span} through an option, running [f] bare when [None] — the shape
    every [?trace]-taking algorithm uses. *)

val charge : t -> int -> unit
(** Advance the clock by a phase-level round charge (a {!Kdom} ledger
    entry's worth of rounds that no engine run backs).  Raises
    [Invalid_argument] on a negative charge. *)

val charge_opt : t option -> int -> unit

val add_span :
  t -> ?track:int -> name:string -> start_round:int -> stop_round:int -> unit -> unit
(** Record a synthetic span with explicit clock bounds — used for phases
    that share one engine execution (the pipelined censuses of [DiamDOM],
    the fixed phase schedule of [Simple_mst_congest]) and for stages that
    run in parallel (per-fragment [FastDOM_T]), which overlap on the clock
    and are told apart by [track].  The span becomes a child of the
    innermost open span.  Raises [Invalid_argument] if
    [stop_round < start_round]. *)

val note : t -> string -> int -> unit
(** Attach a named scalar to the trace summary (fault-layer totals, frame
    counts...).  Re-noting a name overwrites it. *)

val histogram : t -> string -> (int * int) list -> unit
(** Attach a named [(value, count)] histogram to the trace — request
    latency and hop-count distributions, per-edge load ({!Serve}), or any
    other empirical distribution a protocol wants recorded.  Exported as a
    [hist] JSONL record.  Re-recording a name overwrites it; raises
    [Invalid_argument] on a negative count. *)

val set_budget : t -> int -> unit
(** Declare the per-message word budget in force; kept as the maximum over
    all declarations, compared against the observed peak by {!Metrics}. *)

val budget : t -> int option

val set_shards : t -> int -> unit
(** Declare the domain count the traced execution ran under
    ({!Engine.exec}'s [?domains]); defaults to 1 (sequential).  Recorded
    in the [meta] line so a trace states which executor produced it —
    the sharded engine is bit-identical to the sequential one, so the
    rest of the trace does not depend on it.  Raises [Invalid_argument]
    if [d < 1]. *)

val shards : t -> int

(** {2 Inspection} *)

val spans : t -> span list
(** All spans, sorted by [(start_round, id)]. *)

val span_stats : t -> span -> span_stats
(** Round/message totals inside a span's clock bounds (inclusive of nested
    spans — a parent covers its children's rounds). *)

val rounds : t -> Engine.Sink.round_info list
(** Buffered round records, re-clocked to the trace's absolute round
    clock, in clock order. *)

val messages : t -> int
(** Messages observed at send time ([on_message] count). *)

val peak_words : t -> int
(** Widest single message observed. *)

val word_hist : t -> (int * int) list
(** [(width, messages of that width)], ascending, zero-count widths
    omitted. *)

val edge_congestion : t -> ((int * int) * int) list
(** Per directed edge [(src, dst)], the peak single-message width carried,
    sorted heaviest first. *)

val edge_peak_hist : t -> (int * int) list
(** [(peak width, number of directed edges whose peak is that width)],
    ascending — the congestion histogram to hold against the word
    budget. *)

val notes : t -> (string * int) list
(** Notes in insertion order. *)

val histograms : t -> (string * (int * int) list) list
(** Named histograms in insertion order. *)

(** {2 Export} *)

val schema_version : string
(** The JSONL schema identifier, ["kdom.trace.v1.7"].  v1.1 added the
    frontier counters ([skipped]/[woken]) to the [round], [span] and
    [summary] records; v1.2 adds the churn counter ([crashed]) to the
    same three records; v1.3 adds the executor domain count ([shards])
    to the [meta] record; v1.4 adds the dynamic-graph counters
    ([arrived]/[departed]/[inserted]) to the [round], [span] and
    [summary] records; v1.5 adds the [hist] record ({!histogram} —
    named [(value, count)] distributions, e.g. the serving layer's
    latency / hop-count / edge-load histograms); v1.6 re-bases the [bits]
    fields on the packed codec's measured wire lengths; v1.7 adds the
    integrity counter ([corrupted])
    to the [round], [span] and [summary] records, distinguishing frames
    rejected by the CRC guard from plain drops.  Any change to the
    record shapes below bumps this string and the golden files. *)

val to_jsonl : t -> string
(** The versioned JSONL trace: a [meta] line, one [span] line per span
    (start-round order), one [round] line per buffered round record with
    {e every} field present (fault counters included, always — the schema
    is homogeneous by construction), [note] lines, [hist] lines, and a
    final [summary] line.  All values are integers, so output is
    bit-deterministic. *)

val export_jsonl : t -> out_channel -> unit

val to_chrome : t -> string
(** Chrome trace-event JSON (one [X] complete event per span, [ts]/[dur]
    in rounds as microseconds, plus a [delivered] counter track) —
    loadable in Perfetto. *)

val export_chrome : t -> out_channel -> unit

(** {2 Validation} *)

val validate_line : ?first:bool -> string -> (unit, string) result
(** Structural check of one JSONL line against the schema: known [type],
    every required field present with a value of the right shape.  With
    [first] the line must be the [meta] header declaring
    {!schema_version}. *)

val validate_lines : string list -> (int, string) result
(** Validate a whole trace: first line [meta], last line [summary], every
    line well-formed.  [Ok n] is the number of lines checked; [Error]
    carries ["line N: reason"]. *)

val validate_channel : in_channel -> (int, string) result
