(** Live request serving over the cluster forest: the event-driven
    traffic layer on top of a [(k+1, O(k))] dominating partition.

    The paper's §6 applications (directories, sparse routing) are offline
    cost calculators; this module makes the same structure {e serve}: a
    synthetic timeline of requests is injected at their origin nodes and
    carried message-by-message through the cluster trees of a
    {!Repair.plan} on the CONGEST {!Engine}.

    - {e Lookup}: "where is my nearest directory copy?"  The request
      climbs tree parents to the cluster dominator, leaving a breadcrumb
      (request id -> previous hop) at every relay; the dominator answers
      with its id and the reply descends the breadcrumbs.  Round trip:
      [2 * depth(origin)] hops.
    - {e Publish}: a directory write.  Same climb; the dominator commits
      the write and acknowledges down the breadcrumb path, so the origin
      learns completion.
    - {e Route}: deliver a payload to a node of the same cluster.  The
      frame climbs until the first ancestor holding the destination in
      its subtree table (the tree LCA), then descends next-hop tables to
      the destination, which acknowledges back along the breadcrumbs.  A
      destination outside the tree is NACKed by the root — the request
      terminates {e rejected} rather than lost.

    Transport discipline: every frame is [| tag; request; aux; hops |] —
    {!max_words} = 4 words, the engine's default CONGEST budget — and a
    node sends {e at most one frame per edge per round}: frames queue
    per-neighbor and drain one per round, so congestion at a hot
    dominator shows up as queueing latency, never as a widened message.
    Idle nodes ride wake hints ([OnMessage] plus [At] timers for
    injections and retry deadlines) and cost nothing.

    Reliability: origins keep an unanswered request pending and re-send
    the initial frame after [retry_after] rounds, up to [retries] times —
    enough to survive transient frame loss from churn.  Requests whose
    serving path died stay [Lost] in the report; {!with_repair} composes
    a crashed execution with a {!Repair} healing phase and a retry phase
    so surviving requests are eventually answered (checked by
    {!check_handover}).

    Every run records per-request latency (answer round minus injection
    round) and round-trip hop counts; {!run} publishes p50/p99 summaries
    as trace notes and full distributions as v1.5 [hist] records
    ([serve.latency], [serve.hops], [serve.edge_load]). *)

open Kdom_graph

type kind =
  | Lookup        (** find the cluster dominator (directory copy) *)
  | Publish       (** write at the dominator, acknowledged *)
  | Route of int  (** deliver to the given destination node *)

type request = {
  origin : int;  (** node the request is injected at *)
  kind : kind;
  at : int;      (** injection round, in [\[0, horizon)] *)
}

type config = {
  plan : Repair.plan;      (** the cluster forest to serve through *)
  requests : request array;  (** request id = index in this array *)
  horizon : int;           (** every node halts at this round *)
  retry_after : int;       (** rounds an origin waits before re-sending;
                               make it comfortably above the cluster
                               round-trip [2 * depth + queueing] *)
  retries : int;           (** re-sends per request after the first *)
}

val max_words : int
(** Declared word budget: every frame is [| tag; request; aux; hops |] —
    4 words. *)

val validate : Graph.t -> config -> unit
(** Raises [Invalid_argument] unless the plan passes
    {!Repair.validate_plan} and every request names a valid origin (and
    destination), with [0 <= at < horizon], [retry_after >= 1],
    [retries >= 0]. *)

type state
(** Per-node protocol state (abstract; decode with {!decode}). *)

val ealgorithm : Graph.t -> config -> state Engine.ealgorithm
(** The node program in the emit-native shape — queued 4-word frames are
    drained straight into the packed send arena.  This is the kernel
    {!run} executes.  Validate with {!validate} (or use {!run}) first. *)

val algorithm : Graph.t -> config -> state Engine.algorithm
(** The legacy list shape, derived from {!ealgorithm} via
    {!Engine.to_algorithm} — exposed for custom executions. *)

type outcome =
  | Answered of { round : int; hops : int; answer : int }
      (** terminal success: [answer] is the dominator id (lookup /
          publish) or the destination (route); [hops] is the round-trip
          hop count, 0 for a locally answered request *)
  | Rejected of { round : int; hops : int }
      (** terminal refusal: sentinel origin (no cluster), or a route
          whose destination is outside the origin's cluster tree *)
  | Lost  (** no answer by the horizon — the serving path died or the
              horizon was too short *)

type report = {
  outcomes : outcome array;  (** per request id *)
  answered : int;
  rejected : int;
  lost : int;
  local : int;          (** answered without any frame (origin was the
                            dominator / its own destination) *)
  retries_used : int;   (** re-sends performed by origins *)
  stray : int;          (** replies dropped at a relay with no breadcrumb
                            (duplicate answers after a retry) *)
  frames : int;         (** total frames sent *)
  latencies : int array;  (** sorted latencies of answered requests *)
  hop_counts : int array; (** sorted round-trip hop counts of answered *)
  edge_load : (int * int) list;
      (** congestion histogram: [(frames carried, directed edges that
          carried that many)], ascending, edges with zero frames
          omitted *)
  queue_peak : int;     (** largest per-node outgoing queue observed *)
}

val decode : config -> state array -> report

val percentile : int array -> int -> int
(** [percentile sorted p] — nearest-rank percentile, [p] in [\[0, 100\]];
    0 on an empty array. *)

val hist : int array -> (int * int) list
(** [(value, count)] histogram of an array, ascending by value. *)

val tree_distance : Repair.plan -> int -> int -> int option
(** Hop distance between two nodes of the same cluster tree (via their
    LCA), [None] when they are in different trees or carry the joiner
    sentinel.  The offline mirror of the route climb/descend path. *)

val run :
  ?trace:Trace.t ->
  ?sink:Engine.Sink.t ->
  ?degrade:bool ->
  ?churn:Engine.Churn.t ->
  ?guard:bool ->
  ?corrupt:Engine.Corrupt.spec ->
  ?max_rounds:int ->
  Engine.t ->
  config ->
  state array * Engine.stats
(** Execute the serving protocol until [horizon].  With [?trace] the run
    is recorded as a [serve] span with [serve.*] notes (answered /
    rejected / lost / retries / p50 / p99) and the v1.5 latency, hop and
    edge-load histograms. *)

val check : Graph.t -> config -> report -> Oracle.failure list
(** Churn-free oracle: every request reached a terminal outcome; lookups
    and publishes from clustered origins were answered by their plan
    dominator in exactly [2 * depth(origin)] hops; routes inside one
    tree were answered in [2 * tree_distance] hops and routes across
    trees were rejected. *)

(** {2 Crash-mid-traffic composition} *)

type handover = {
  phase1 : report;          (** the serving run under churn *)
  repair : Repair.report;   (** the healing phase ({!Repair.run}) *)
  healed_plan : Repair.plan;
      (** the repaired forest, normalized ({!Dynamic.normalize}) —
          sentinel at dead nodes *)
  retried : int array;
      (** original request ids re-injected in the retry phase *)
  phase2 : report option;   (** the retry run, [None] when nothing
                                survived unanswered *)
  alive : bool array;       (** liveness after the whole churn schedule *)
  dead_edges : (int * int) list;
}

val with_repair :
  ?trace:Trace.t ->
  ?sink:Engine.Sink.t ->
  ?degrade:bool ->
  ?guard:bool ->
  ?corrupt:Engine.Corrupt.spec ->
  beta:int ->
  lease:int ->
  settle:int ->
  Engine.t ->
  config ->
  churn:Engine.Churn.event list ->
  handover
(** Serve under [churn], heal the forest with a [settle]-round
    {!Repair.run} (heartbeat period [beta], lease [lease]) over the
    post-churn topology, then re-inject every unanswered request from a
    surviving origin against the healed plan.  The composition is the
    dominator-handover story: requests that died with their dominator
    are answered by its takeover successor after reattach. *)

val check_handover : Graph.t -> config -> handover -> Oracle.failure list
(** The eventual-service oracle: every request whose origin (and, for a
    route, destination) survived the churn and whose surviving component
    holds a live dominator reaches a terminal outcome across the two
    phases; lookups and publishes must be answered (never rejected), and
    a route must be answered when its endpoints share a cluster in the
    plan that served it.  Requests from crashed origins, to crashed
    destinations, or in components the repair could not re-dominate are
    exempt. *)
