(** Aggregated metrics over a {!Trace}: the in-process view the tests use
    to assert the paper's bounds against live executions (SimpleMST phase
    lengths, DiamDOM's [5*Diam + k], the per-message word budget). *)

type span_report = {
  r_name : string;
  r_count : int;        (** spans carrying this name *)
  r_rounds : int;       (** total rounds across them *)
  r_max_rounds : int;   (** longest single span *)
  r_delivered : int;
  r_words : int;
  r_bits : int;      (** measured wire bits ({!Codec.measured_bits}) *)
  r_skipped : int;   (** live-node steps the sparse scheduler elided *)
  r_woken : int;     (** timer-driven wake-ups *)
  r_dropped : int;
  r_duplicated : int;
  r_retransmits : int;
  r_corrupted : int;  (** frames rejected by the integrity guard *)
  r_crashed : int;   (** nodes fail-stopped by churn during the spans *)
  r_arrived : int;   (** dormant nodes brought online during the spans *)
  r_departed : int;  (** graceful departures during the spans *)
  r_inserted : int;  (** reserved edges brought up during the spans *)
}

type t = {
  rounds : int;         (** final value of the trace's round clock *)
  messages : int;       (** messages observed at send time *)
  delivered : int;      (** messages delivered (sums engine round records) *)
  words : int;          (** payload (logical) words delivered *)
  bits : int;
      (** measured wire bits delivered — the honest O(log n)-bit cost of the
          run as encoded by {!Codec}, not the declared word budget *)
  peak_words : int;     (** widest single message *)
  budget : int option;  (** declared word budget, if any *)
  skipped : int;        (** total elided steps (frontier saving) *)
  woken : int;          (** total timer-driven wake-ups *)
  dropped : int;
  duplicated : int;
  retransmits : int;
  corrupted : int;      (** total frames rejected by the integrity guard *)
  crashed : int;        (** total nodes fail-stopped by churn *)
  arrived : int;        (** total dormant nodes brought online *)
  departed : int;       (** total graceful departures *)
  inserted : int;       (** total reserved edges brought up *)
  edge_peaks : (int * int) list;
      (** congestion histogram: [(peak width, edges at that peak)] *)
  span_reports : span_report list;
      (** one per distinct span name, in first-appearance order *)
  notes : (string * int) list;
  hists : (string * (int * int) list) list;
      (** named [(value, count)] histograms ({!Trace.histogram}) — e.g.
          the serving layer's latency / hop / edge-load distributions *)
}

val report : Trace.t -> t

val within_budget : t -> bool
(** No observed message wider than the declared budget; vacuously true
    when no budget was declared. *)

val find : t -> string -> span_report option
(** Exact-name lookup, e.g. [find r "diam_dom.census[3]"]. *)

val matching : t -> prefix:string -> span_report list
(** Reports whose name starts with [prefix] — [matching r
    ~prefix:"simple_mst.phase"] collects every phase. *)

val span_index : string -> int option
(** The bracketed index of an indexed span name:
    [span_index "simple_mst.phase[4]" = Some 4]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary table. *)
