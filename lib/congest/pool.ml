(* A minimal fixed-size fork/join pool over stdlib [Domain]: one worker per
   shard, coordinated with a mutex + two condition variables.  The shape is
   domainslib's [Task.pool] restricted to the single pattern the sharded
   engine needs — run the same closure once per shard, then barrier — so the
   library carries no dependency beyond the OCaml 5 stdlib.

   Memory model: every shared-array write a worker performs inside [run] is
   ordered before the coordinator's return by the mutex hand-off (release on
   the worker's final unlock, acquire on the coordinator's wait loop), so
   phase-separated readers never race with phase-N writers. *)

type t = {
  size : int;
  mutex : Mutex.t;
  go : Condition.t;
  finished : Condition.t;
  mutable epoch : int;           (* bumped once per [run]; workers wait on it *)
  mutable job : (int -> unit) option;
  mutable pending : int;         (* workers still inside the current job *)
  mutable failures : (int * exn) list;  (* (worker index, exception) *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let worker t i =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.epoch = !seen && not t.stop do
      Condition.wait t.go t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      let failure = try job i; None with exn -> Some exn in
      Mutex.lock t.mutex;
      (match failure with
      | None -> ()
      | Some exn -> t.failures <- (i, exn) :: t.failures);
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      go = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      job = None;
      pending = 0;
      failures = [];
      stop = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let size t = t.size

let run t f =
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.job <- Some f;
    t.epoch <- t.epoch + 1;
    t.pending <- t.size - 1;
    t.failures <- [];
    Condition.broadcast t.go;
    Mutex.unlock t.mutex;
    (* the calling domain doubles as worker 0 *)
    let own_failure = try f 0; None with exn -> Some exn in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    let failures = t.failures in
    t.job <- None;
    Mutex.unlock t.mutex;
    let failures =
      match own_failure with None -> failures | Some exn -> (0, exn) :: failures
    in
    match List.sort (fun (a, _) (b, _) -> compare a b) failures with
    | [] -> ()
    | (_, exn) :: _ -> raise exn
  end

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.go;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
